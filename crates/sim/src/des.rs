//! Minimal discrete-event helpers.
//!
//! The scalability experiments (paper Fig. 6) simulate many enclaves
//! concurrently performing attachments while contending for shared
//! hardware — most importantly the Pisces IPI channel, whose interrupt
//! handling is pinned to core 0 of the management enclave. Two small pieces
//! suffice to model this faithfully:
//!
//! * [`Resource`] — a single-server queue with a busy calendar: each
//!   request books the earliest sufficient gap at or after its arrival.
//! * [`run_actors`] — a worklist loop that repeatedly steps whichever actor
//!   has the earliest next-event time, so independent actors interleave in
//!   correct global time order.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A single-server resource (e.g. the core-0 IPI handler) with a busy
/// calendar.
///
/// `acquire(at, service)` books the earliest gap of length `service` at or
/// after `at` in the resource's schedule. Requests arriving at the same
/// instant serialize; a request arriving at time `t` is *not* blocked by
/// reservations that lie entirely after `t + service` can fit — so callers
/// may submit requests out of global time order (as the worklist drivers
/// do, where each actor books its whole operation before the next actor
/// runs) and still get a correct contention model.
///
/// Long-running drivers call [`Resource::retire_before`] as virtual time
/// advances: intervals that end at or before the low-water mark can never
/// affect a future booking (the scan in `acquire` skips them unexamined),
/// so pruning them keeps the per-acquire scan over the *pending* horizon
/// instead of the whole history — without it, a chaos run's calendar
/// grows linearly and each acquire is O(grants), an O(n²) total.
#[derive(Debug, Clone, Default)]
pub struct Resource {
    /// Booked intervals, sorted by start time. Non-overlapping, so also
    /// sorted by end time — which is what lets `retire_before` pop a
    /// prefix.
    calendar: VecDeque<(SimTime, SimTime)>,
    /// No future `acquire` may arrive earlier than this; intervals
    /// ending at or before it have been pruned.
    low_water: SimTime,
    /// End of the latest booking ever made (pruning-stable `free_at`).
    last_end: SimTime,
    /// Intervals pruned by `retire_before`.
    retired: u64,
    /// Total time the resource spent serving requests.
    busy_time: SimDuration,
    /// Total time requests spent waiting for the resource.
    wait_time: SimDuration,
    grants: u64,
}

/// The serviced interval returned by [`Resource::acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service began (≥ the requested arrival time).
    pub start: SimTime,
    /// When service completed; the caller resumes at this time.
    pub end: SimTime,
}

impl Grant {
    /// How long the request waited before service began.
    pub fn queued(&self, arrival: SimTime) -> SimDuration {
        self.start.duration_since(arrival)
    }
}

impl Resource {
    /// A fresh, idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `service` time starting no earlier than `at`: books the
    /// earliest sufficient gap in the calendar.
    pub fn acquire(&mut self, at: SimTime, service: SimDuration) -> Grant {
        debug_assert!(
            at >= self.low_water,
            "acquire at {} ns arrives before the retired horizon ({} ns)",
            at.as_nanos(),
            self.low_water.as_nanos()
        );
        // Find the insertion region: skip intervals that end at or before
        // the candidate, shifting the candidate past overlapping ones,
        // until a gap of `service` opens up.
        let mut candidate = at;
        let mut insert_pos = self.calendar.len();
        for (i, &(s, e)) in self.calendar.iter().enumerate() {
            if e <= candidate {
                continue;
            }
            if s >= candidate + service {
                insert_pos = i;
                break;
            }
            candidate = candidate.max(e);
        }
        let start = candidate;
        let end = start + service;
        // Keep the calendar sorted by start.
        if insert_pos == self.calendar.len() {
            insert_pos = self
                .calendar
                .iter()
                .position(|&(s, _)| s > start)
                .unwrap_or(self.calendar.len());
        }
        if !service.is_zero() {
            self.calendar.insert(insert_pos, (start, end));
            self.last_end = self.last_end.max(end);
        }
        self.busy_time += service;
        self.wait_time += start.duration_since(at);
        self.grants += 1;
        Grant { start, end }
    }

    /// Drop bookings that can no longer influence any future `acquire`:
    /// every interval ending at or before `horizon`, under the promise
    /// that no future request arrives earlier than `horizon` (asserted
    /// in debug builds).
    ///
    /// Behaviour-preserving by construction: an interval with
    /// `end <= horizon <= arrival` is exactly one the `acquire` scan
    /// skips via its `e <= candidate` branch, so removing it changes no
    /// grant. The horizon is monotone; stale calls are no-ops.
    pub fn retire_before(&mut self, horizon: SimTime) {
        if horizon <= self.low_water {
            return;
        }
        self.low_water = horizon;
        while self.calendar.front().is_some_and(|&(_, e)| e <= horizon) {
            self.calendar.pop_front();
            self.retired += 1;
        }
    }

    /// The time at which the resource's last booking ends. Stable under
    /// [`Resource::retire_before`]: pruning never moves this back.
    pub fn free_at(&self) -> SimTime {
        self.last_end
    }

    /// Bookings currently held in the calendar (pruned ones excluded).
    pub fn booked(&self) -> usize {
        self.calendar.len()
    }

    /// Bookings pruned by [`Resource::retire_before`] so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Total service time granted so far.
    pub fn total_busy(&self) -> SimDuration {
        self.busy_time
    }

    /// Total queueing delay experienced by all requests so far.
    pub fn total_wait(&self) -> SimDuration {
        self.wait_time
    }

    /// Number of grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }
}

/// A steppable simulation actor.
///
/// `step` performs the actor's next unit of work beginning at `now` and
/// returns the absolute time at which the actor next becomes runnable, or
/// `None` when it has finished. Returned times must be ≥ `now`.
pub trait Actor {
    /// Execute one step; see the trait docs.
    fn step(&mut self, now: SimTime) -> Option<SimTime>;
}

/// Run a set of actors to completion, always stepping the actor with the
/// earliest next-event time. Returns the virtual time at which the last
/// actor finished.
///
/// Ties are broken by actor index, so runs are deterministic.
pub fn run_actors(actors: &mut [&mut dyn Actor]) -> SimTime {
    let mut heap: BinaryHeap<Reverse<(SimTime, usize)>> = (0..actors.len())
        .map(|i| Reverse((SimTime::ZERO, i)))
        .collect();
    let mut end = SimTime::ZERO;
    while let Some(Reverse((now, idx))) = heap.pop() {
        match actors[idx].step(now) {
            Some(next) => {
                debug_assert!(next >= now, "actor {idx} scheduled into the past");
                heap.push(Reverse((next.max(now), idx)));
            }
            None => end = end.max(now),
        }
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_serves_fifo() {
        let mut r = Resource::new();
        let g1 = r.acquire(SimTime::from_nanos(0), SimDuration::from_nanos(10));
        assert_eq!(g1.start.as_nanos(), 0);
        assert_eq!(g1.end.as_nanos(), 10);
        // Arrives while busy: waits.
        let g2 = r.acquire(SimTime::from_nanos(5), SimDuration::from_nanos(10));
        assert_eq!(g2.start.as_nanos(), 10);
        assert_eq!(g2.end.as_nanos(), 20);
        assert_eq!(g2.queued(SimTime::from_nanos(5)).as_nanos(), 5);
        // Arrives after idle gap: starts immediately.
        let g3 = r.acquire(SimTime::from_nanos(100), SimDuration::from_nanos(1));
        assert_eq!(g3.start.as_nanos(), 100);
        assert_eq!(r.grants(), 3);
        assert_eq!(r.total_busy().as_nanos(), 21);
        assert_eq!(r.total_wait().as_nanos(), 5);
    }

    /// An actor that performs `n` units of `work`, each gated by a shared
    /// resource acquisition of `service` time.
    struct Looper<'a> {
        resource: &'a std::cell::RefCell<Resource>,
        service: SimDuration,
        work: SimDuration,
        remaining: u32,
        finished_at: SimTime,
    }

    impl Actor for Looper<'_> {
        fn step(&mut self, now: SimTime) -> Option<SimTime> {
            if self.remaining == 0 {
                self.finished_at = now;
                return None;
            }
            self.remaining -= 1;
            let grant = self.resource.borrow_mut().acquire(now, self.service);
            Some(grant.end + self.work)
        }
    }

    #[test]
    fn actors_interleave_in_time_order() {
        // Two actors, each needing the shared resource for 10 ns per
        // iteration with 0 private work: the resource fully serializes
        // them, so 2 actors × 3 iterations × 10 ns = 60 ns.
        let resource = std::cell::RefCell::new(Resource::new());
        let mk = || Looper {
            resource: &resource,
            service: SimDuration::from_nanos(10),
            work: SimDuration::ZERO,
            remaining: 3,
            finished_at: SimTime::ZERO,
        };
        let (mut a, mut b) = (mk(), mk());
        let end = run_actors(&mut [&mut a, &mut b]);
        assert_eq!(end.as_nanos(), 60);
    }

    #[test]
    fn private_work_overlaps() {
        // Service 1 ns, private work 99 ns: the resource is almost never
        // contended, so both actors finish in ~3 × 100 ns, not 600 ns.
        let resource = std::cell::RefCell::new(Resource::new());
        let mk = || Looper {
            resource: &resource,
            service: SimDuration::from_nanos(1),
            work: SimDuration::from_nanos(99),
            remaining: 3,
            finished_at: SimTime::ZERO,
        };
        let (mut a, mut b) = (mk(), mk());
        let end = run_actors(&mut [&mut a, &mut b]);
        assert!(end.as_nanos() <= 305, "end = {}", end.as_nanos());
    }

    #[test]
    fn run_actors_handles_empty_set() {
        assert_eq!(run_actors(&mut []), SimTime::ZERO);
    }
}

#[cfg(test)]
mod calendar_tests {
    use super::*;

    #[test]
    fn later_arrival_fills_an_earlier_gap() {
        let mut r = Resource::new();
        // Book [100, 200).
        r.acquire(SimTime::from_nanos(100), SimDuration::from_nanos(100));
        // A request arriving at 0 needing 50 fits in the gap before 100.
        let g = r.acquire(SimTime::from_nanos(0), SimDuration::from_nanos(50));
        assert_eq!((g.start.as_nanos(), g.end.as_nanos()), (0, 50));
        // Another 60-ns request at 0 does NOT fit in [50, 100): it lands
        // after the existing booking.
        let g2 = r.acquire(SimTime::from_nanos(0), SimDuration::from_nanos(60));
        assert_eq!(g2.start.as_nanos(), 200);
    }

    #[test]
    fn out_of_order_whole_operations_overlap_correctly() {
        // The fig6 worklist pattern: actor A books its two message slots
        // before actor B runs, but B's arrival time is earlier than A's
        // second slot — B must not queue behind it.
        let mut r = Resource::new();
        let a1 = r.acquire(SimTime::from_nanos(0), SimDuration::from_nanos(10));
        assert_eq!(a1.start.as_nanos(), 0);
        let a2 = r.acquire(SimTime::from_nanos(1_000), SimDuration::from_nanos(10));
        assert_eq!(a2.start.as_nanos(), 1_000);
        // B arrives at t=20 — the gap [10, 1000) is free.
        let b1 = r.acquire(SimTime::from_nanos(20), SimDuration::from_nanos(10));
        assert_eq!(b1.start.as_nanos(), 20);
        assert_eq!(r.total_wait(), SimDuration::ZERO);
    }

    #[test]
    fn exact_fit_gap_is_used() {
        let mut r = Resource::new();
        r.acquire(SimTime::from_nanos(0), SimDuration::from_nanos(10)); // [0,10)
        r.acquire(SimTime::from_nanos(20), SimDuration::from_nanos(10)); // [20,30)
                                                                         // Exactly 10 ns fits in [10, 20).
        let g = r.acquire(SimTime::from_nanos(5), SimDuration::from_nanos(10));
        assert_eq!((g.start.as_nanos(), g.end.as_nanos()), (10, 20));
    }

    #[test]
    fn zero_service_requests_do_not_pollute_the_calendar() {
        let mut r = Resource::new();
        for _ in 0..100 {
            let g = r.acquire(SimTime::from_nanos(50), SimDuration::ZERO);
            assert_eq!(g.start.as_nanos(), 50);
        }
        assert_eq!(r.free_at(), SimTime::ZERO, "no bookings should exist");
        assert_eq!(r.grants(), 100);
    }

    #[test]
    fn retirement_preserves_out_of_order_booking_against_zero_gap_intervals() {
        // Two resources fed the identical request sequence; one is pruned
        // aggressively between requests. Every grant must match.
        let mut pruned = Resource::new();
        let mut reference = Resource::new();
        let both = |r: &mut Resource| {
            // Adjacent, zero-gap prefix [0,10)[10,20)[20,30), then a
            // distant island [100,130).
            r.acquire(SimTime::from_nanos(0), SimDuration::from_nanos(10));
            r.acquire(SimTime::from_nanos(10), SimDuration::from_nanos(10));
            r.acquire(SimTime::from_nanos(20), SimDuration::from_nanos(10));
            r.acquire(SimTime::from_nanos(100), SimDuration::from_nanos(30));
        };
        both(&mut pruned);
        both(&mut reference);
        // The whole zero-gap prefix ends by 30; no future arrival is
        // earlier than 30, so it is retireable. [100,130) must survive.
        pruned.retire_before(SimTime::from_nanos(30));
        assert_eq!(pruned.booked(), 1);
        assert_eq!(pruned.retired(), 3);

        // Out-of-order arrivals around the surviving interval: one that
        // fits the gap [30,100) exactly at its zero-gap left edge, one
        // forced behind the island, one adjacent to the island's end.
        for (at, service) in [(30u64, 70u64), (35, 50), (40, 200)] {
            let a = pruned.acquire(SimTime::from_nanos(at), SimDuration::from_nanos(service));
            let b = reference.acquire(SimTime::from_nanos(at), SimDuration::from_nanos(service));
            assert_eq!(
                a, b,
                "grant diverged after pruning (at={at}, service={service})"
            );
        }
        assert_eq!(pruned.free_at(), reference.free_at());
        assert_eq!(pruned.total_busy(), reference.total_busy());
        assert_eq!(pruned.total_wait(), reference.total_wait());
        // Monotone horizon: a stale retire call is a no-op.
        let booked = pruned.booked();
        pruned.retire_before(SimTime::from_nanos(10));
        assert_eq!(pruned.booked(), booked);
    }

    #[test]
    fn retirement_bounds_calendar_growth() {
        // The chaos pattern: a steady stream of bookings with a rising
        // arrival horizon. With retirement the live calendar stays small.
        let mut r = Resource::new();
        for i in 0..10_000u64 {
            let at = SimTime::from_nanos(i * 100);
            r.acquire(at, SimDuration::from_nanos(40));
            if i % 64 == 0 {
                r.retire_before(at);
            }
        }
        assert!(
            r.booked() <= 80,
            "calendar grew: {} live entries",
            r.booked()
        );
        assert_eq!(r.retired() + r.booked() as u64, 10_000);
        assert_eq!(r.grants(), 10_000);
        assert_eq!(r.free_at().as_nanos(), 9_999 * 100 + 40);
    }

    #[test]
    fn calendar_stays_sorted_under_random_order() {
        // Insert bookings at scattered times and verify no two overlap.
        let mut r = Resource::new();
        let times = [500u64, 100, 900, 300, 700, 200, 800, 400, 600, 0];
        let mut grants = Vec::new();
        for &t in &times {
            grants.push(r.acquire(SimTime::from_nanos(t), SimDuration::from_nanos(80)));
        }
        grants.sort_by_key(|g| g.start);
        for w in grants.windows(2) {
            assert!(
                w[0].end <= w[1].start,
                "overlap: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        // Total booked time is exactly 10 × 80 ns.
        assert_eq!(r.total_busy().as_nanos(), 800);
    }
}
