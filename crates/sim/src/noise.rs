//! Composable OS-noise models.
//!
//! Operating-system noise — interrupts, daemons, SMIs — is central to the
//! paper's argument: Kitten enclaves are nearly noise-free, Linux enclaves
//! are not, and the difference drives both the Selfish Detour profile
//! (Fig. 7) and the variance/scaling results (Figs. 8–9). The same
//! generators defined here feed all of those experiments, so isolation
//! benefits in the benchmark results are emergent rather than hard-coded
//! per-figure.
//!
//! A noise source is a stateful generator of [`NoiseEvent`]s — intervals
//! during which the CPU is stolen from the application. Generators are
//! consumed front-to-back: callers request events over successive,
//! non-overlapping windows.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A single interval of stolen CPU time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoiseEvent {
    /// When the detour began.
    pub start: SimTime,
    /// How long the CPU was away from the application.
    pub duration: SimDuration,
    /// What caused it (for trace labelling).
    pub kind: NoiseKind,
}

/// Classification of noise events, used to label detour profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseKind {
    /// Baseline hardware detours present even on Kitten (~12 µs band).
    Hardware,
    /// System management interrupts (~100 µs band, periodic).
    Smi,
    /// Full-weight-kernel timer tick.
    TimerTick,
    /// Full-weight-kernel background daemon activity (heavy-tailed).
    Daemon,
    /// The enclave core served a remote XEMEM attachment (page-table walk).
    AttachService,
}

/// A stateful generator of noise events.
pub trait NoiseGen {
    /// All events with `start` in `[from, to)`, in time order. Successive
    /// calls must use non-overlapping, increasing windows.
    fn events_in(&mut self, from: SimTime, to: SimTime) -> Vec<NoiseEvent>;
}

/// Poisson-arrival noise with normally distributed durations.
///
/// Used for the Kitten hardware baseline (mean interval ≈ 10 ms, duration
/// ≈ 12 µs — the dense band of paper Fig. 7) and for FWK timer ticks.
#[derive(Debug, Clone)]
pub struct PoissonNoise {
    kind: NoiseKind,
    mean_interval: SimDuration,
    dur_mean: SimDuration,
    dur_stddev: SimDuration,
    next_arrival: SimTime,
    rng: SimRng,
    primed: bool,
}

impl PoissonNoise {
    /// Kitten's baseline hardware detours: ~12 µs events, mean interval
    /// 10 ms (paper Fig. 7 dense band).
    pub fn kitten_hardware(rng: SimRng) -> Self {
        Self::new(
            NoiseKind::Hardware,
            SimDuration::from_millis(10),
            SimDuration::from_micros(12),
            SimDuration::from_nanos(600),
            rng,
        )
    }

    /// FWK timer tick: 1 kHz, ~3 µs handler.
    pub fn fwk_timer(rng: SimRng) -> Self {
        Self::new(
            NoiseKind::TimerTick,
            SimDuration::from_millis(1),
            SimDuration::from_micros(3),
            SimDuration::from_nanos(400),
            rng,
        )
    }

    /// A fully parameterized Poisson source.
    pub fn new(
        kind: NoiseKind,
        mean_interval: SimDuration,
        dur_mean: SimDuration,
        dur_stddev: SimDuration,
        rng: SimRng,
    ) -> Self {
        PoissonNoise {
            kind,
            mean_interval,
            dur_mean,
            dur_stddev,
            next_arrival: SimTime::ZERO,
            rng,
            primed: false,
        }
    }
}

impl NoiseGen for PoissonNoise {
    fn events_in(&mut self, from: SimTime, to: SimTime) -> Vec<NoiseEvent> {
        if !self.primed {
            self.next_arrival = from + self.rng.exp_duration(self.mean_interval);
            self.primed = true;
        }
        let mut out = Vec::new();
        // Skip forward if the caller jumped ahead of the cursor.
        while self.next_arrival < from {
            self.next_arrival += self.rng.exp_duration(self.mean_interval);
        }
        while self.next_arrival < to {
            let duration = self.rng.normal_duration(self.dur_mean, self.dur_stddev);
            out.push(NoiseEvent {
                start: self.next_arrival,
                duration,
                kind: self.kind,
            });
            self.next_arrival += self.rng.exp_duration(self.mean_interval);
        }
        out
    }
}

/// Periodic noise with jitter — system management interrupts.
#[derive(Debug, Clone)]
pub struct PeriodicNoise {
    kind: NoiseKind,
    period: SimDuration,
    jitter: SimDuration,
    dur_mean: SimDuration,
    dur_stddev: SimDuration,
    next_arrival: SimTime,
    rng: SimRng,
    primed: bool,
}

impl PeriodicNoise {
    /// SMIs: every ~700 ms, ~100 µs long (paper Fig. 7 sparse band).
    pub fn smi(rng: SimRng) -> Self {
        PeriodicNoise {
            kind: NoiseKind::Smi,
            period: SimDuration::from_millis(700),
            jitter: SimDuration::from_millis(60),
            dur_mean: SimDuration::from_micros(100),
            dur_stddev: SimDuration::from_micros(7),
            next_arrival: SimTime::ZERO,
            rng,
            primed: false,
        }
    }
}

impl NoiseGen for PeriodicNoise {
    fn events_in(&mut self, from: SimTime, to: SimTime) -> Vec<NoiseEvent> {
        if !self.primed {
            // First SMI lands somewhere within the first period.
            self.next_arrival = from
                + SimDuration::from_nanos(self.rng.uniform_u64(0, self.period.as_nanos().max(1)));
            self.primed = true;
        }
        let mut out = Vec::new();
        while self.next_arrival < from {
            self.advance();
        }
        while self.next_arrival < to {
            let duration = self.rng.normal_duration(self.dur_mean, self.dur_stddev);
            out.push(NoiseEvent {
                start: self.next_arrival,
                duration,
                kind: self.kind,
            });
            self.advance();
        }
        out
    }
}

impl PeriodicNoise {
    fn advance(&mut self) {
        let jit = self.rng.normal_duration(SimDuration::ZERO, self.jitter);
        self.next_arrival += self.period + jit;
    }
}

/// Heavy-tailed daemon noise for full-weight kernels.
///
/// Arrivals are Poisson; durations are lognormal, so occasional events are
/// one to two orders of magnitude longer than the median — the mechanism
/// behind the Linux-only configurations' runtime variance in Figs. 8–9.
#[derive(Debug, Clone)]
pub struct DaemonNoise {
    mean_interval: SimDuration,
    /// Median detour duration (lognormal `exp(mu)`), seconds.
    median_secs: f64,
    /// Lognormal sigma.
    sigma: f64,
    next_arrival: SimTime,
    rng: SimRng,
    primed: bool,
}

impl DaemonNoise {
    /// Default full-weight-kernel daemon activity: mean interval 40 ms,
    /// median detour 120 µs, σ = 1.3 (tail reaching several ms).
    pub fn fwk_default(rng: SimRng) -> Self {
        Self::new(SimDuration::from_millis(40), 120e-6, 1.3, rng)
    }

    /// Heavy bursts on a full-weight kernel (cron/kswapd/page-cache
    /// writeback storms): mean interval 8 s, median 0.18 s, σ = 0.8.
    /// These drive the Linux-only variance of Fig. 8 and the
    /// max-over-nodes weak-scaling degradation of Fig. 9 (bursts on
    /// different nodes rarely coincide, so each one stalls the whole
    /// coupled job).
    pub fn fwk_bursts(rng: SimRng) -> Self {
        Self::new(SimDuration::from_secs(8), 0.18, 0.8, rng)
    }

    /// Light daemon activity inside a dedicated Linux *guest* whose host
    /// is an isolated co-kernel: few services, small detours.
    pub fn vm_guest_daemons(rng: SimRng) -> Self {
        Self::new(SimDuration::from_millis(100), 30e-6, 1.0, rng)
    }

    /// Fully parameterized daemon noise.
    pub fn new(mean_interval: SimDuration, median_secs: f64, sigma: f64, rng: SimRng) -> Self {
        DaemonNoise {
            mean_interval,
            median_secs,
            sigma,
            next_arrival: SimTime::ZERO,
            rng,
            primed: false,
        }
    }
}

impl NoiseGen for DaemonNoise {
    fn events_in(&mut self, from: SimTime, to: SimTime) -> Vec<NoiseEvent> {
        if !self.primed {
            self.next_arrival = from + self.rng.exp_duration(self.mean_interval);
            self.primed = true;
        }
        let mut out = Vec::new();
        while self.next_arrival < from {
            self.next_arrival += self.rng.exp_duration(self.mean_interval);
        }
        while self.next_arrival < to {
            let secs = self.rng.lognormal(self.median_secs.ln(), self.sigma);
            out.push(NoiseEvent {
                start: self.next_arrival,
                duration: SimDuration::from_secs_f64(secs),
                kind: NoiseKind::Daemon,
            });
            self.next_arrival += self.rng.exp_duration(self.mean_interval);
        }
        out
    }
}

/// A source that replays an explicit schedule of events — used to inject
/// attachment-service detours whose timing is decided by the experiment
/// driver.
#[derive(Debug, Clone, Default)]
pub struct ScheduledNoise {
    events: Vec<NoiseEvent>,
    cursor: usize,
}

impl ScheduledNoise {
    /// Build from a pre-sorted schedule (sorted by `start`).
    pub fn new(mut events: Vec<NoiseEvent>) -> Self {
        events.sort_by_key(|e| e.start);
        ScheduledNoise { events, cursor: 0 }
    }

    /// Append an event; the schedule is kept sorted lazily at next query.
    pub fn push(&mut self, event: NoiseEvent) {
        self.events.push(event);
        // Keep sorted from the cursor onward.
        self.events[self.cursor..].sort_by_key(|e| e.start);
    }
}

impl NoiseGen for ScheduledNoise {
    fn events_in(&mut self, from: SimTime, to: SimTime) -> Vec<NoiseEvent> {
        let mut out = Vec::new();
        while self.cursor < self.events.len() && self.events[self.cursor].start < to {
            let e = self.events[self.cursor];
            if e.start >= from {
                out.push(e);
            }
            self.cursor += 1;
        }
        out
    }
}

/// Merges several sources into one time-ordered stream.
pub struct CompositeNoise {
    sources: Vec<Box<dyn NoiseGen + Send>>,
}

impl CompositeNoise {
    /// Compose the given sources.
    pub fn new(sources: Vec<Box<dyn NoiseGen + Send>>) -> Self {
        CompositeNoise { sources }
    }

    /// The Kitten enclave noise profile: hardware baseline + SMIs.
    pub fn kitten(rng: &mut SimRng) -> Self {
        CompositeNoise::new(vec![
            Box::new(PoissonNoise::kitten_hardware(rng.fork(0xA))),
            Box::new(PeriodicNoise::smi(rng.fork(0xB))),
        ])
    }

    /// The FWK (Linux-like) noise profile: hardware + SMIs + timer + daemons.
    pub fn fwk(rng: &mut SimRng) -> Self {
        CompositeNoise::new(vec![
            Box::new(PoissonNoise::kitten_hardware(rng.fork(0xA))),
            Box::new(PeriodicNoise::smi(rng.fork(0xB))),
            Box::new(PoissonNoise::fwk_timer(rng.fork(0xC))),
            Box::new(DaemonNoise::fwk_default(rng.fork(0xD))),
            Box::new(DaemonNoise::fwk_bursts(rng.fork(0xE))),
        ])
    }

    /// The profile of a Linux guest in a VM on an isolated co-kernel
    /// host: near-Kitten hardware baseline plus the guest's own light
    /// daemon activity (the Fig. 9 multi-enclave simulation enclave).
    pub fn vm_on_lwk_guest(rng: &mut SimRng) -> Self {
        CompositeNoise::new(vec![
            Box::new(PoissonNoise::kitten_hardware(rng.fork(0xA))),
            Box::new(PeriodicNoise::smi(rng.fork(0xB))),
            Box::new(DaemonNoise::vm_guest_daemons(rng.fork(0xF))),
        ])
    }

    /// An effectively silent profile (for idealized ablations).
    pub fn silent() -> Self {
        CompositeNoise::new(Vec::new())
    }
}

impl NoiseGen for CompositeNoise {
    fn events_in(&mut self, from: SimTime, to: SimTime) -> Vec<NoiseEvent> {
        let mut out: Vec<NoiseEvent> = self
            .sources
            .iter_mut()
            .flat_map(|s| s.events_in(from, to))
            .collect();
        out.sort_by_key(|e| e.start);
        out
    }
}

/// Compute when `cpu_work` of application CPU time, started at `start`,
/// completes under the given noise source.
///
/// Every noise event that begins before the (continuously extended)
/// completion point steals its duration from the application. This is the
/// standard fixed-point construction: extend the window, collect newly
/// revealed events, repeat until stable.
pub fn finish_time_with_noise(
    gen: &mut dyn NoiseGen,
    start: SimTime,
    cpu_work: SimDuration,
) -> SimTime {
    let mut end = start + cpu_work;
    let mut covered = start;
    loop {
        if covered >= end {
            break;
        }
        let events = gen.events_in(covered, end);
        covered = end;
        let stolen: SimDuration = events.iter().map(|e| e.duration).sum();
        if stolen.is_zero() {
            break;
        }
        end += stolen;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(99)
    }

    #[test]
    fn poisson_rate_is_roughly_right() {
        let mut src = PoissonNoise::kitten_hardware(rng());
        let events = src.events_in(SimTime::ZERO, SimTime::from_nanos(10_000_000_000));
        // 10 s at mean interval 10 ms ⇒ ~1000 events.
        assert!(
            (800..1200).contains(&events.len()),
            "{} events",
            events.len()
        );
        for e in &events {
            let us = e.duration.as_micros_f64();
            assert!((8.0..16.0).contains(&us), "duration {us} µs");
        }
    }

    #[test]
    fn smi_period_is_roughly_right() {
        let mut src = PeriodicNoise::smi(rng());
        let events = src.events_in(SimTime::ZERO, SimTime::from_nanos(10_000_000_000));
        // 10 s at ~700 ms period ⇒ ~14 events.
        assert!((10..20).contains(&events.len()), "{} events", events.len());
    }

    #[test]
    fn daemon_noise_has_a_heavy_tail() {
        let mut src = DaemonNoise::fwk_default(rng());
        let events = src.events_in(SimTime::ZERO, SimTime::from_nanos(60_000_000_000));
        assert!(events.len() > 1000);
        let max = events.iter().map(|e| e.duration).max().unwrap();
        let mut sorted: Vec<_> = events.iter().map(|e| e.duration).collect();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        assert!(
            max.as_nanos() > 10 * median.as_nanos(),
            "tail max {max} vs median {median}"
        );
    }

    #[test]
    fn scheduled_noise_replays_in_windows() {
        let e1 = NoiseEvent {
            start: SimTime::from_nanos(100),
            duration: SimDuration::from_nanos(5),
            kind: NoiseKind::AttachService,
        };
        let e2 = NoiseEvent {
            start: SimTime::from_nanos(300),
            duration: SimDuration::from_nanos(5),
            kind: NoiseKind::AttachService,
        };
        let mut src = ScheduledNoise::new(vec![e2, e1]);
        assert_eq!(
            src.events_in(SimTime::ZERO, SimTime::from_nanos(200)),
            vec![e1]
        );
        assert_eq!(
            src.events_in(SimTime::from_nanos(200), SimTime::from_nanos(400)),
            vec![e2]
        );
        assert!(src
            .events_in(SimTime::from_nanos(400), SimTime::from_nanos(999))
            .is_empty());
    }

    #[test]
    fn finish_time_without_noise_is_exact() {
        let mut silent = CompositeNoise::silent();
        let end = finish_time_with_noise(
            &mut silent,
            SimTime::from_nanos(50),
            SimDuration::from_nanos(100),
        );
        assert_eq!(end.as_nanos(), 150);
    }

    #[test]
    fn finish_time_extends_by_stolen_time() {
        // One 10 ns event at t=5 within a 100 ns job starting at 0.
        let mut src = ScheduledNoise::new(vec![NoiseEvent {
            start: SimTime::from_nanos(5),
            duration: SimDuration::from_nanos(10),
            kind: NoiseKind::Daemon,
        }]);
        let end = finish_time_with_noise(&mut src, SimTime::ZERO, SimDuration::from_nanos(100));
        assert_eq!(end.as_nanos(), 110);
    }

    #[test]
    fn finish_time_fixed_point_catches_cascading_events() {
        // Second event only falls inside the window once the first extends it.
        let mut src = ScheduledNoise::new(vec![
            NoiseEvent {
                start: SimTime::from_nanos(90),
                duration: SimDuration::from_nanos(50),
                kind: NoiseKind::Daemon,
            },
            NoiseEvent {
                start: SimTime::from_nanos(120),
                duration: SimDuration::from_nanos(7),
                kind: NoiseKind::Daemon,
            },
        ]);
        let end = finish_time_with_noise(&mut src, SimTime::ZERO, SimDuration::from_nanos(100));
        assert_eq!(end.as_nanos(), 157);
    }

    #[test]
    fn composite_merges_in_time_order() {
        let mut rng = rng();
        let mut src = CompositeNoise::fwk(&mut rng);
        let events = src.events_in(SimTime::ZERO, SimTime::from_nanos(2_000_000_000));
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        // Both timer ticks and daemons present.
        assert!(events.iter().any(|e| e.kind == NoiseKind::TimerTick));
        assert!(events.iter().any(|e| e.kind == NoiseKind::Daemon));
    }
}
