//! Summary statistics and throughput helpers for the experiment harnesses.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Summary statistics over a set of observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarize a slice of observations. Returns a zeroed summary for an
    /// empty slice.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Summary {
            n,
            mean,
            stddev: var.sqrt(),
            min,
            max,
        }
    }

    /// Summarize virtual durations, in seconds.
    pub fn of_durations(ds: &[SimDuration]) -> Summary {
        let secs: Vec<f64> = ds.iter().map(|d| d.as_secs_f64()).collect();
        Summary::of(&secs)
    }
}

/// Throughput in GB/s (decimal gigabytes, matching the paper's axes) for
/// moving `bytes` in `elapsed` virtual time. Returns 0 for zero elapsed.
pub fn throughput_gbps(bytes: u64, elapsed: SimDuration) -> f64 {
    let s = elapsed.as_secs_f64();
    if s <= 0.0 {
        0.0
    } else {
        bytes as f64 / s / 1e9
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a set of observations, by linear
/// interpolation on the sorted data. Returns `None` for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_data() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample stddev of this classic dataset is ~2.138.
        assert!((s.stddev - 2.1380899).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_handles_degenerate_inputs() {
        let empty = Summary::of(&[]);
        assert_eq!(empty.n, 0);
        let one = Summary::of(&[3.5]);
        assert_eq!(one.mean, 3.5);
        assert_eq!(one.stddev, 0.0);
        assert_eq!(one.min, 3.5);
        assert_eq!(one.max, 3.5);
    }

    #[test]
    fn throughput_matches_hand_computation() {
        // 1 GiB in 100 ms = 10.73 GB/s decimal.
        let t = throughput_gbps(1 << 30, SimDuration::from_millis(100));
        assert!((t - 10.73741824).abs() < 1e-6);
        assert_eq!(throughput_gbps(100, SimDuration::ZERO), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn duration_summary_converts_to_seconds() {
        let s = Summary::of_durations(&[SimDuration::from_secs(1), SimDuration::from_secs(3)]);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }
}
