//! Typed memory tiers and the hot/cold migration policy.
//!
//! The reproduction's original cost model charged every byte against one
//! flat DRAM pool. Composed exascale nodes do not look like that: beyond
//! the local socket there are remote-NUMA sockets, CXL memory expanders
//! and NVM, each with its own capacity, latency and bandwidth. The
//! methodology here follows the hybrid-memory emulators retrieved in
//! PAPERS.md (CXLMemSim, "Emulating Hybrid Memory on NUMA Hardware"):
//! typed tiers with distinct parameters, and *migration* between tiers as
//! the optimization lever.
//!
//! Two design rules keep the tier model compatible with the workspace's
//! determinism contracts:
//!
//! * **Additive surcharges.** Per-page tier costs are integer
//!   nanoseconds *added* to the flat-DRAM charge, never multiplicative
//!   factors, so batched extent charges remain bit-identical to a
//!   per-page loop (`pages × extra_ns` is exact u64 arithmetic), and the
//!   [`MemTier::LocalDram`] defaults of zero reproduce every pre-tier
//!   result byte for byte.
//! * **Deterministic policy.** The migration policy counts accesses in
//!   *virtual* time windows and applies hysteresis thresholds; it never
//!   consults host time or unseeded randomness, so a run's migration
//!   schedule is a pure function of the workload.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A typed memory tier of the simulated node.
///
/// Discriminant order is fastest-to-slowest and doubles as the dense
/// array index used by the per-tier page classification throughout the
/// workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum MemTier {
    /// DRAM on the enclave's own socket — the pre-tier baseline.
    LocalDram,
    /// DRAM on a remote NUMA socket (QPI-era interconnect).
    RemoteNuma,
    /// A CXL memory expander device.
    Cxl,
    /// Non-volatile memory DIMMs.
    Nvm,
}

impl MemTier {
    /// Number of tiers (for dense per-tier arrays).
    pub const COUNT: usize = MemTier::Nvm as usize + 1;

    /// All tiers, fastest first.
    pub const ALL: [MemTier; MemTier::COUNT] = [
        MemTier::LocalDram,
        MemTier::RemoteNuma,
        MemTier::Cxl,
        MemTier::Nvm,
    ];

    /// Dense array index.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake-case name (figure tables, fault-plan errors).
    pub const fn as_str(self) -> &'static str {
        match self {
            MemTier::LocalDram => "local_dram",
            MemTier::RemoteNuma => "remote_numa",
            MemTier::Cxl => "cxl",
            MemTier::Nvm => "nvm",
        }
    }
}

impl fmt::Display for MemTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-tier cost parameters.
///
/// The `*_extra_ns` fields are **additive per-page surcharges** over the
/// flat-DRAM charge of the corresponding operation; bandwidths replace
/// the DRAM streaming bandwidth outright for bytes resident in the tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierCosts {
    /// Export-side page-table-walk surcharge per page resident in the
    /// tier (media latency seen by the walker touching the PTE's frame).
    pub walk_extra_ns: u64,
    /// Attach-side mapping-install surcharge per page in the tier.
    pub map_extra_ns: u64,
    /// Demand fault-in / first-touch surcharge per page (frame zeroing
    /// against the tier's write latency).
    pub touch_extra_ns: u64,
    /// Sustained streaming *read* bandwidth of the tier, bytes/s.
    pub read_bps: u64,
    /// Sustained streaming *write* bandwidth of the tier, bytes/s.
    pub write_bps: u64,
}

/// The full tier parameter set carried by the cost model.
///
/// Named fields (rather than a tier-indexed map) keep the struct flat
/// for serde and make the calibration defaults self-documenting; use
/// [`TierModel::costs`] for tier-indexed access.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierModel {
    /// Local-socket DRAM. **Must stay all-zero surcharges with
    /// `read_bps`/`write_bps` equal to `dram_stream_bps`** so the
    /// single-tier configuration reproduces pre-tier results exactly.
    pub local_dram: TierCosts,
    /// Remote-NUMA DRAM: the paper's §5.1 cross-socket penalty, expressed
    /// additively (≈1.5× op factor, ≈0.62× bandwidth).
    pub remote_numa: TierCosts,
    /// CXL expander: roughly 2–3× DRAM latency, ~60% bandwidth
    /// (CXLMemSim's emulated device band).
    pub cxl: TierCosts,
    /// NVM DIMMs: ~300 ns media reads, deeply asymmetric write
    /// bandwidth.
    pub nvm: TierCosts,
    /// Per-page bookkeeping of a tier migration (PTE rewrite + PFN-list
    /// node), charged by the owning kernel's batched remap.
    pub migrate_page_ns: u64,
    /// Per-extent setup of a batched migration (allocation of the
    /// destination run, one unmap/map call pair).
    pub migrate_extent_ns: u64,
}

impl Default for TierModel {
    fn default() -> Self {
        TierModel {
            local_dram: TierCosts {
                walk_extra_ns: 0,
                map_extra_ns: 0,
                touch_extra_ns: 0,
                read_bps: 12_000_000_000,
                write_bps: 12_000_000_000,
            },
            remote_numa: TierCosts {
                walk_extra_ns: 44,
                map_extra_ns: 115,
                touch_extra_ns: 60,
                read_bps: 7_440_000_000,
                write_bps: 7_440_000_000,
            },
            cxl: TierCosts {
                walk_extra_ns: 90,
                map_extra_ns: 180,
                touch_extra_ns: 150,
                read_bps: 8_000_000_000,
                write_bps: 6_000_000_000,
            },
            nvm: TierCosts {
                walk_extra_ns: 250,
                map_extra_ns: 400,
                touch_extra_ns: 600,
                read_bps: 2_400_000_000,
                write_bps: 900_000_000,
            },
            migrate_page_ns: 150,
            migrate_extent_ns: 1_200,
        }
    }
}

impl TierModel {
    /// Tier-indexed access to the per-tier parameters.
    pub const fn costs(&self, tier: MemTier) -> &TierCosts {
        match tier {
            MemTier::LocalDram => &self.local_dram,
            MemTier::RemoteNuma => &self.remote_numa,
            MemTier::Cxl => &self.cxl,
            MemTier::Nvm => &self.nvm,
        }
    }
}

/// Deterministic hot/cold migration policy over virtual time.
///
/// Per exported segment, accesses are counted per `chunk_pages`-sized
/// chunk inside fixed virtual-time windows. At each window close a chunk
/// whose count reached [`TierPolicy::hot_threshold`] extends its hot
/// streak, one at or below [`TierPolicy::cold_threshold`] extends its
/// cold streak, and anything between clears both. A chunk is promoted to
/// [`TierPolicy::fast_tier`] after `hysteresis` consecutive hot windows
/// and demoted back to its segment's home tier after `hysteresis`
/// consecutive cold windows.
///
/// `hysteresis == u32::MAX` *disables* migration entirely — the policy
/// still counts, but no streak can ever reach the threshold. The tier
/// proptest pins down that a disabled policy is observationally
/// identical to running with no policy at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierPolicy {
    /// Virtual-time length of one access-counting window.
    pub window: SimDuration,
    /// Accesses per window at or above which a chunk counts as hot.
    pub hot_threshold: u64,
    /// Accesses per window at or below which a chunk counts as cold.
    pub cold_threshold: u64,
    /// Consecutive qualifying windows before a chunk migrates;
    /// `u32::MAX` disables migration.
    pub hysteresis: u32,
    /// Migration granularity, pages per chunk.
    pub chunk_pages: u64,
    /// The tier hot chunks are promoted to.
    pub fast_tier: MemTier,
}

impl Default for TierPolicy {
    fn default() -> Self {
        TierPolicy {
            window: SimDuration::from_nanos(1_000_000),
            hot_threshold: 4,
            cold_threshold: 0,
            hysteresis: 2,
            chunk_pages: 1024,
            fast_tier: MemTier::LocalDram,
        }
    }
}

impl TierPolicy {
    /// The default policy with migration disabled (`hysteresis = MAX`):
    /// counters tick, nothing ever moves.
    pub fn disabled() -> Self {
        TierPolicy {
            hysteresis: u32::MAX,
            ..TierPolicy::default()
        }
    }

    /// True when this policy can ever migrate a chunk.
    pub fn armed(&self) -> bool {
        self.hysteresis != u32::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_indexing_is_dense_and_stable() {
        for (i, t) in MemTier::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
        assert_eq!(MemTier::COUNT, 4);
        assert_eq!(MemTier::Cxl.to_string(), "cxl");
    }

    #[test]
    fn local_dram_defaults_are_neutral() {
        let m = TierModel::default();
        assert_eq!(m.local_dram.walk_extra_ns, 0);
        assert_eq!(m.local_dram.map_extra_ns, 0);
        assert_eq!(m.local_dram.touch_extra_ns, 0);
        // Pinned to `CostModel::default().dram_stream_bps` — the cost.rs
        // test `tier_stream_matches_dram_stream_on_local` cross-checks.
        assert_eq!(m.local_dram.read_bps, 12_000_000_000);
        assert_eq!(m.local_dram.write_bps, 12_000_000_000);
    }

    #[test]
    fn slower_tiers_really_are_slower() {
        let m = TierModel::default();
        for t in [MemTier::RemoteNuma, MemTier::Cxl, MemTier::Nvm] {
            let c = m.costs(t);
            assert!(c.walk_extra_ns > 0, "{t} walk surcharge");
            assert!(c.read_bps < m.local_dram.read_bps, "{t} read bw");
            assert!(c.write_bps < m.local_dram.write_bps, "{t} write bw");
        }
        assert!(m.nvm.write_bps < m.nvm.read_bps, "NVM write asymmetry");
    }

    #[test]
    fn disabled_policy_is_not_armed() {
        assert!(TierPolicy::default().armed());
        assert!(!TierPolicy::disabled().armed());
    }
}
