//! The calibrated cost model.
//!
//! Every virtual-time charge in the workspace comes from a constant defined
//! here. The defaults are calibrated so that the *reported* numbers of the
//! XEMEM paper (HPDC'15) are reproduced in shape and rough magnitude; each
//! field's doc comment records which paper observation pins it down.
//!
//! The calibration chain, in brief:
//!
//! * Paper Fig. 5 / Table 2 row 1: native cross-enclave attach sustains
//!   ~12.8–13 GB/s independent of region size ⇒ per-4KiB-page pipeline cost
//!   ≈ 315–320 ns, split between the exporting kernel's page-table walk and
//!   the attaching kernel's per-page remap.
//! * Paper Fig. 7: a 1 GiB attachment served by a single-core Kitten enclave
//!   produces ~23.2–23.8 ms detours ⇒ export-side walk ≈ 85–90 ns/page
//!   (262,144 pages).
//! * Paper Table 2 row 2: attaching from inside a Palacios VM drops
//!   throughput ~3.2× to 3.99 GB/s, and removing red-black-tree insertion
//!   time recovers 8.79 GB/s, with ~80% of mapping time spent updating the
//!   guest memory map ⇒ RB insert ≈ 100 ns + ~15 ns per node visited
//!   (measured mean ≈ 30.5 visits/insert while mapping 1 GiB), plus
//!   ~146 ns/page of memory-map bookkeeping.
//! * Paper Fig. 5: RDMA write over SR-IOV QDR InfiniBand sustains just under
//!   3.5 GB/s.
//!
//! Absolute numbers on the authors' Dell PowerEdge R420 cannot be recovered
//! exactly from a simulator; what the model preserves is who wins, by what
//! factor, and where the crossovers fall.

use crate::tier::{MemTier, TierModel};
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Calibrated virtual-time costs for all simulated operations.
///
/// Construct with [`CostModel::default`] for the paper-calibrated values, or
/// mutate individual fields for ablation studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    // ------------------------------------------------------------------
    // Page-table and address-space operations
    // ------------------------------------------------------------------
    /// Export-side page-table walk, per 4 KiB page (generating one PFN-list
    /// entry). Calibrated from Fig. 7: 262,144 pages × 88 ns ≈ 23.1 ms,
    /// matching the ~23.2–23.8 ms detour band for 1 GiB attachments.
    pub walk_pte_ns: u64,

    /// Attach-side per-page mapping cost in a full-weight (Linux-like)
    /// kernel: `remap_pfn_range` PTE install plus VMA bookkeeping.
    /// Calibrated with `walk_pte_ns` to hit Table 2 row 1 (12.84 GB/s):
    /// 4096 B ÷ (88 + 230) ns ≈ 12.9 GB/s.
    pub fwk_remap_page_ns: u64,

    /// Attach-side per-page mapping cost in the lightweight kernel (no VMA
    /// machinery, direct PTE install into the dynamic-heap region).
    pub lwk_map_page_ns: u64,

    /// Fixed cost of a `vm_mmap`-style region reservation in the FWK.
    pub fwk_vm_mmap_ns: u64,

    /// Fixed cost of pinning a user region (`get_user_pages`) before a walk,
    /// per page. The paper notes pages are generally already allocated, so
    /// this is a refcount/pin pass, far cheaper than fault-in.
    pub fwk_pin_page_ns: u64,

    /// Demand-paging fault service cost in the FWK, per faulted page.
    /// Drives the Fig. 8(b) observation that recurring *single-OS* Linux
    /// attachments suffer from page-faulting semantics.
    pub fwk_fault_ns: u64,

    /// Per-page cost of zeroing/allocating a fresh frame.
    pub frame_alloc_ns: u64,

    // ------------------------------------------------------------------
    // Palacios (VMM) operations
    // ------------------------------------------------------------------
    /// Red-black-tree insert: fixed part (node allocation, initial link).
    /// With `rb_level_ns`, calibrated so the average per-page insert while
    /// mapping 1 GiB (tree growing to 262,144 entries, measured mean
    /// ≈ 30.5 node visits per insert) costs ≈ 560 ns — the gap between
    /// Table 2's 3.99 GB/s and 8.79 GB/s.
    pub rb_insert_base_ns: u64,

    /// Red-black-tree per-level (comparison + possible rotation amortized)
    /// cost, charged per node visited during insert/lookup/delete.
    pub rb_level_ns: u64,

    /// Radix-tree per-level cost (the paper's proposed future-work
    /// replacement; used by the ablation bench). A page-table-shaped radix
    /// tree touches a fixed 4 levels regardless of occupancy.
    pub radix_level_ns: u64,

    /// Per-page guest memory-map bookkeeping *excluding* the search
    /// structure itself (region entry allocation, validation, shadow
    /// invalidation). Together with RB inserts this forms the "~80% of time
    /// spent updating the guest's memory map" of §5.4. The guest-side PTE
    /// install is charged separately by the guest kernel
    /// (`fwk_remap_page_ns` for a Linux guest).
    pub vmm_map_bookkeep_ns: u64,

    /// Per-page GPA→HPA translation when the *host* walks the memory map to
    /// service a guest-exported region (Fig. 4(b)); the map is small in the
    /// common case, so this is `rb_level_ns` × actual depth, but a floor is
    /// charged for the surrounding loop.
    pub vmm_translate_floor_ns: u64,

    /// Hypercall (guest → host synchronous exit) latency.
    pub hypercall_ns: u64,

    /// Fixed cost of a SMARTMAP-style local attachment in Kitten (shared
    /// top-level page-table entries: O(1) regardless of region size —
    /// paper §2, §4.3).
    pub smartmap_ns: u64,

    /// Virtual IRQ delivery latency (host → guest notification, including
    /// guest interrupt handler entry).
    pub guest_irq_ns: u64,

    /// Per-page cost of copying PFNs through the virtual PCI device's list
    /// buffer (8 bytes/entry plus device-register protocol amortized).
    pub pci_pfn_copy_ns: u64,

    // ------------------------------------------------------------------
    // Cross-enclave channels (Pisces IPI path)
    // ------------------------------------------------------------------
    /// One-way IPI delivery latency between enclaves (vector dispatch +
    /// handler entry on the destination core).
    pub ipi_ns: u64,

    /// Fixed per-message protocol cost on the shared-memory kernel channel
    /// (flag handshake + header copy), *excluding* the IPI itself.
    pub channel_msg_ns: u64,

    /// Bandwidth of bulk copies through the kernel shared-memory channel
    /// (PFN lists), bytes per second.
    pub channel_bw_bps: u64,

    /// Name-server processing per request (segid allocation, map lookup,
    /// forwarding decision).
    pub name_server_ns: u64,

    /// Router forwarding decision per hop (enclave-ID map lookup).
    pub route_hop_ns: u64,

    // ------------------------------------------------------------------
    // Memory traffic
    // ------------------------------------------------------------------
    /// Sustained DRAM streaming bandwidth per NUMA socket, bytes/s.
    /// A 2015 dual-channel DDR3 Xeon socket sustains ~12 GB/s on STREAM.
    pub dram_stream_bps: u64,

    /// Effective bandwidth for reading freshly attached shared memory in
    /// the Fig. 5 "attach + read" series. Calibrated from the paper's own
    /// gap (13 GB/s attach vs 12 GB/s attach+read ⇒ read adds only ~26 ns
    /// per page): reads ride on mappings still hot in cache/TLB.
    pub attached_read_bps: u64,

    // ------------------------------------------------------------------
    // RDMA baseline
    // ------------------------------------------------------------------
    /// Raw RDMA-write wire bandwidth over a QDR (32 Gbit/s data rate)
    /// ConnectX-3 virtual function, bytes/s. Together with `rdma_seg_ns`
    /// this yields the just-under-3.5 GB/s effective rate of Fig. 5.
    pub rdma_bw_bps: u64,

    /// RDMA one-sided operation posting + completion latency.
    pub rdma_post_ns: u64,

    /// Maximum transmission unit used to segment RDMA transfers, bytes.
    pub rdma_mtu: usize,

    /// Per-MTU-segment header/DMA engine overhead.
    pub rdma_seg_ns: u64,

    // ------------------------------------------------------------------
    // Workload roofline
    // ------------------------------------------------------------------
    /// Double-precision FLOP rate per core, FLOPs/s (for the CG roofline).
    pub flops_per_core: u64,

    /// Multiplicative slowdown applied to computation running inside a
    /// virtual machine (nested paging pressure on a memory-bound solver,
    /// timer virtualization). Calibrated from Fig. 9: the multi-enclave
    /// configuration (simulation virtualized) runs ~2 s slower than
    /// native Linux at one node (~46.5 s vs ~44.5 s) before isolation
    /// pays off at scale.
    pub vm_compute_overhead: f64,

    /// Extra multiplicative slowdown for a VM whose *host* is the busy
    /// Linux management enclave rather than an isolated Kitten co-kernel
    /// (host daemons steal cycles from the VMM core).
    pub vm_on_fwk_host_penalty: f64,

    /// Memory-bandwidth contention multiplier applied to a workload phase
    /// when another memory-intensive phase runs concurrently in the *same*
    /// OS/R on the same socket (the Fig. 8 Linux/Linux async case).
    pub colocation_contention: f64,

    /// Extra fractional cost on FWK attach-side map updates when two or
    /// more processes concurrently update memory maps ("contention for
    /// Linux data structures", §5.3) — one of the two causes of the
    /// Fig. 6 1→2-enclave throughput dip.
    pub fwk_mmap_contention: f64,

    /// Multiplicative slowdown on per-page mapping/walk operations when
    /// the frames live on a *remote* NUMA socket. The paper pins every
    /// enclave to a single socket precisely "to avoid overhead resulting
    /// from cross-NUMA domain memory accesses" (§5.1); the
    /// `ablation_numa` bench quantifies what that avoids. QPI-era remote
    /// accesses run ~1.4–1.6× slower.
    pub numa_remote_op_factor: f64,

    /// Fraction of local DRAM bandwidth available for streaming reads of
    /// remote-socket memory.
    pub numa_remote_bw_factor: f64,

    // ------------------------------------------------------------------
    // Failure handling and teardown
    // ------------------------------------------------------------------
    /// Virtual time a sender waits before retransmitting a forwarded
    /// command whose hop was dropped (no ack observed). Modeled on a
    /// conservative kernel-level command timeout, far above the ~µs
    /// round-trip of a healthy channel.
    pub retransmit_timeout_ns: u64,

    /// Base delay of the name-server retry backoff; attempt *k* waits
    /// `ns_retry_base_ns << k` of virtual time before re-sending (capped
    /// by [`CostModel::ns_retry_max_attempts`]).
    pub ns_retry_base_ns: u64,

    /// Maximum name-server retry attempts before an operation gives up
    /// with `NameServerUnavailable`.
    pub ns_retry_max_attempts: u32,

    /// Owner-kernel bookkeeping to tear down one exported segment during
    /// revocation (unlink from the export table, walk the attacher index).
    pub revoke_bookkeeping_ns: u64,

    /// Per-attachment cost of the reaper unmapping a dead attachment in
    /// the attaching enclave (VMA/arena teardown plus TLB shootdown).
    pub reap_unmap_ns: u64,

    // ------------------------------------------------------------------
    // Sharded name service
    // ------------------------------------------------------------------
    /// Client-side shard selection when the namespace is split across
    /// more than one name-server enclave: one hash-ring probe to pick
    /// the shard leader. Charged only when the ring has > 1 shard; the
    /// single-shard configuration is bitwise identical to the original
    /// centralized name server.
    pub ns_shard_route_ns: u64,

    /// Lease term granted with every name-server answer, in virtual
    /// nanoseconds. A client may serve cached results locally until the
    /// lease expires; afterwards it must revalidate with the shard
    /// leader. Sized well above a routed round trip so steady-state
    /// lookups hit the cache, but short enough that failover staleness
    /// is bounded.
    pub ns_lease_ns: u64,

    /// Client-side cost of checking a cached lease (expiry + epoch
    /// comparison) before serving a lookup locally.
    pub ns_lease_check_ns: u64,

    /// Leader-side cost of granting or renewing one lease (recording
    /// the holder and its expiry in the shard's soft state).
    pub ns_lease_renew_ns: u64,

    /// Replication lag from a shard leader to its followers: mutations
    /// older than this horizon are guaranteed durable on every live
    /// replica, younger ones are lost if the leader dies first.
    pub ns_replication_lag_ns: u64,

    /// Time a shard stays unavailable after its leader dies while the
    /// surviving replicas run the (deterministic) election.
    pub ns_election_timeout_ns: u64,

    // ------------------------------------------------------------------
    // Buffer-pool service layer
    // ------------------------------------------------------------------
    /// Free-list scan/pop/push inside the pool's slot-indexed metadata
    /// header: one cache line of shared state per operation.
    pub pool_slot_scan_ns: u64,

    /// Slot header initialization on acquire (size class, generation,
    /// owner tags). The `dayn9t/xmem` exemplar lands allocation in the
    /// low-microsecond band; scan + init + refcount sits well under it
    /// because the data slab is pre-carved.
    pub pool_slot_init_ns: u64,

    /// One refcount increment/decrement on a slot header (the exemplar's
    /// headline ~7 ns atomic).
    pub pool_ref_ns: u64,

    /// One SPSC/MPSC ring push (slot index + generation word, release
    /// store).
    pub pool_ring_push_ns: u64,

    /// One SPSC/MPSC ring pop (acquire load + head bump).
    pub pool_ring_pop_ns: u64,

    /// Exporter-side reclamation of one slot held by a crashed consumer
    /// (hold-table walk, generation bump, free-list push).
    pub pool_sweep_slot_ns: u64,

    // ------------------------------------------------------------------
    // Heterogeneous memory tiers
    // ------------------------------------------------------------------
    /// Per-tier latency/bandwidth parameters and migration constants.
    /// The [`MemTier::LocalDram`] entry is calibrated to be *neutral*
    /// (zero surcharges, `dram_stream_bps` bandwidth), so topologies
    /// that never leave local DRAM charge exactly what they did before
    /// tiers existed.
    pub tier: TierModel,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            walk_pte_ns: 88,
            fwk_remap_page_ns: 230,
            lwk_map_page_ns: 120,
            fwk_vm_mmap_ns: 2_500,
            fwk_pin_page_ns: 15,
            fwk_fault_ns: 2_200,
            frame_alloc_ns: 30,
            rb_insert_base_ns: 100,
            rb_level_ns: 15,
            radix_level_ns: 24,
            vmm_map_bookkeep_ns: 146,
            vmm_translate_floor_ns: 84,
            hypercall_ns: 1_000,
            smartmap_ns: 800,
            guest_irq_ns: 4_000,
            pci_pfn_copy_ns: 2,
            ipi_ns: 2_000,
            channel_msg_ns: 600,
            channel_bw_bps: 10_000_000_000,
            name_server_ns: 900,
            route_hop_ns: 250,
            dram_stream_bps: 12_000_000_000,
            attached_read_bps: 157_000_000_000,
            rdma_bw_bps: 3_600_000_000,
            rdma_post_ns: 1_200,
            rdma_mtu: 4096,
            rdma_seg_ns: 60,
            flops_per_core: 2_500_000_000,
            vm_compute_overhead: 1.09,
            vm_on_fwk_host_penalty: 1.06,
            colocation_contention: 1.025,
            fwk_mmap_contention: 0.06,
            numa_remote_op_factor: 1.5,
            numa_remote_bw_factor: 0.62,
            retransmit_timeout_ns: 50_000,
            ns_retry_base_ns: 2_000,
            ns_retry_max_attempts: 24,
            revoke_bookkeeping_ns: 400,
            reap_unmap_ns: 350,
            ns_shard_route_ns: 120,
            ns_lease_ns: 200_000,
            ns_lease_check_ns: 60,
            ns_lease_renew_ns: 150,
            ns_replication_lag_ns: 20_000,
            ns_election_timeout_ns: 30_000,
            pool_slot_scan_ns: 40,
            pool_slot_init_ns: 120,
            pool_ref_ns: 7,
            pool_ring_push_ns: 60,
            pool_ring_pop_ns: 60,
            pool_sweep_slot_ns: 500,
            tier: TierModel::default(),
        }
    }
}

impl CostModel {
    /// Time to move `bytes` at `bps` bytes/second.
    pub fn transfer_time(bytes: u64, bps: u64) -> SimDuration {
        if bps == 0 {
            return SimDuration::ZERO;
        }
        // Split to avoid overflow for large byte counts: whole seconds plus
        // remainder at nanosecond resolution.
        let secs = bytes / bps;
        let rem = bytes % bps;
        SimDuration::from_secs(secs)
            + SimDuration::from_nanos(rem.saturating_mul(1_000_000_000) / bps)
    }

    /// Time for a bulk copy through the kernel shared-memory channel.
    pub fn channel_copy(&self, bytes: u64) -> SimDuration {
        Self::transfer_time(bytes, self.channel_bw_bps)
    }

    /// Time to stream `bytes` through DRAM.
    pub fn dram_stream(&self, bytes: u64) -> SimDuration {
        Self::transfer_time(bytes, self.dram_stream_bps)
    }

    /// Time to read `bytes` of freshly attached shared memory.
    pub fn attached_read(&self, bytes: u64) -> SimDuration {
        Self::transfer_time(bytes, self.attached_read_bps)
    }

    /// One-way cost of a small control message over the IPI channel.
    pub fn ipi_message(&self) -> SimDuration {
        SimDuration::from_nanos(self.ipi_ns + self.channel_msg_ns)
    }

    /// Conservative PDES lookahead: the minimum virtual latency any
    /// cross-enclave interaction can exhibit under this model.
    ///
    /// Every path by which one enclave's operation can affect another —
    /// an IPI-channel control message, a guest's PCI hypercall notify,
    /// a host-to-guest interrupt, or a name-service request reaching a
    /// shard — pays at least this much virtual time, so two events
    /// closer together than this floor are causally independent and a
    /// windowed engine may execute them in the same window. Enclave-local
    /// work (e.g. a 60 ns cached lease check) is deliberately excluded:
    /// it cannot cross lanes. Defaults derive a floor of 900 ns (the
    /// name-server service time).
    pub fn pdes_lookahead(&self) -> SimDuration {
        let floor = (self.ipi_ns.saturating_add(self.channel_msg_ns))
            .min(self.hypercall_ns)
            .min(self.guest_irq_ns)
            .min(self.name_server_ns)
            .max(1);
        SimDuration::from_nanos(floor)
    }

    /// Export-side page-table walk for `pages` pages.
    pub fn walk(&self, pages: u64) -> SimDuration {
        SimDuration::from_nanos(self.walk_pte_ns).times(pages)
    }

    // ------------------------------------------------------------------
    // Arithmetic charge formulas
    //
    // Every kernel charges virtual time through these helpers, computed
    // from page counts rather than accumulated inside per-page loops, so
    // the host-side structural work can batch over extents while the
    // reported virtual nanoseconds stay bitwise-identical to a per-page
    // walk (`times` is exact u64 multiplication).
    // ------------------------------------------------------------------

    /// LWK attach-side mapping: one PTE install per leaf written plus a
    /// fixed region-bookkeeping charge.
    pub fn lwk_attach(&self, written: u64) -> SimDuration {
        SimDuration::from_nanos(self.lwk_map_page_ns).times(written) + SimDuration::from_nanos(400)
    }

    /// LWK detach: PTE clears are charged at half the install cost.
    pub fn lwk_detach(&self, pages: u64) -> SimDuration {
        SimDuration::from_nanos(self.lwk_map_page_ns / 2).times(pages)
    }

    /// FWK eager attach: one `vm_mmap` reservation plus `remap_pfn_range`
    /// per leaf written (a 2 MiB leaf counts once — the hugepage
    /// ablation's whole point).
    pub fn fwk_eager_attach(&self, written: u64) -> SimDuration {
        SimDuration::from_nanos(self.fwk_vm_mmap_ns)
            + SimDuration::from_nanos(self.fwk_remap_page_ns).times(written)
    }

    /// FWK detach: PTE clears at half the install cost, per leaf cleared.
    pub fn fwk_detach(&self, cleared: u64) -> SimDuration {
        SimDuration::from_nanos(self.fwk_remap_page_ns / 2).times(cleared)
    }

    /// FWK demand-paging fault-in: fault service plus frame allocation,
    /// per page faulted.
    pub fn fwk_fault_in(&self, faulted: u64) -> SimDuration {
        SimDuration::from_nanos(self.fwk_fault_ns + self.frame_alloc_ns).times(faulted)
    }

    /// `get_user_pages` pin plus export walk, per resident page.
    pub fn pin_and_walk(&self, pages: u64) -> SimDuration {
        SimDuration::from_nanos(self.fwk_pin_page_ns + self.walk_pte_ns).times(pages)
    }

    /// Returning quarantined frames to an allocator, per frame.
    pub fn frame_return(&self, pages: u64) -> SimDuration {
        SimDuration::from_nanos(self.frame_alloc_ns).times(pages)
    }

    /// Host-side GPA→HPA translation of `covered` consecutive guest
    /// frames resolved by one memory-map entry: every frame in the entry
    /// shares the same search path (`visits` node visits), so the batch
    /// charge equals `covered` individual lookups.
    pub fn vmm_translate(&self, visits: u32, covered: u64) -> SimDuration {
        SimDuration::from_nanos(self.vmm_translate_floor_ns + self.rb_level_ns * visits as u64)
            .times(covered)
    }

    // ------------------------------------------------------------------
    // Tier charges
    //
    // All tier surcharges are additive integer nanoseconds per page, so
    // the batched extent forms below equal per-page accumulation exactly
    // and a classification of `[pages_in_local, pages_in_remote, ...]`
    // charges identically however the pages are grouped into extents.
    // ------------------------------------------------------------------

    /// Time to stream-*read* `bytes` resident in `tier`. For
    /// [`MemTier::LocalDram`] under the default model this equals
    /// [`CostModel::dram_stream`] bit for bit.
    pub fn tier_stream_read(&self, tier: MemTier, bytes: u64) -> SimDuration {
        Self::transfer_time(bytes, self.tier.costs(tier).read_bps)
    }

    /// Time to stream-*write* `bytes` resident in `tier`.
    pub fn tier_stream_write(&self, tier: MemTier, bytes: u64) -> SimDuration {
        Self::transfer_time(bytes, self.tier.costs(tier).write_bps)
    }

    /// Export-side walk surcharge for a per-tier page classification
    /// (`by_tier[t]` pages resident in tier `t`, indexed by
    /// [`MemTier::index`]).
    pub fn tier_walk_surcharge(&self, by_tier: &[u64; MemTier::COUNT]) -> SimDuration {
        let mut d = SimDuration::ZERO;
        for t in MemTier::ALL {
            d +=
                SimDuration::from_nanos(self.tier.costs(t).walk_extra_ns).times(by_tier[t.index()]);
        }
        d
    }

    /// Attach-side mapping-install surcharge for a per-tier page
    /// classification.
    pub fn tier_map_surcharge(&self, by_tier: &[u64; MemTier::COUNT]) -> SimDuration {
        let mut d = SimDuration::ZERO;
        for t in MemTier::ALL {
            d += SimDuration::from_nanos(self.tier.costs(t).map_extra_ns).times(by_tier[t.index()]);
        }
        d
    }

    /// First-touch / demand fault-in surcharge for `pages` pages backed
    /// by `tier` frames.
    pub fn tier_touch_surcharge(&self, tier: MemTier, pages: u64) -> SimDuration {
        SimDuration::from_nanos(self.tier.costs(tier).touch_extra_ns).times(pages)
    }

    /// Structural cost of a batched tier migration: `extents` unmap/map
    /// run pairs plus `pages` PTE rewrites. Charged by the owning
    /// kernel; pure arithmetic, so the host side stays O(extents).
    pub fn migrate_remap(&self, extents: u64, pages: u64) -> SimDuration {
        SimDuration::from_nanos(self.tier.migrate_extent_ns).times(extents)
            + SimDuration::from_nanos(self.tier.migrate_page_ns).times(pages)
    }

    /// Data-copy cost of migrating `bytes_by_tier[t]` bytes out of tier
    /// `t` into `dst`: each source tier's bytes move at the slower of
    /// its read bandwidth and the destination's write bandwidth.
    pub fn migrate_copy(&self, bytes_by_tier: &[u64; MemTier::COUNT], dst: MemTier) -> SimDuration {
        let wr = self.tier.costs(dst).write_bps;
        let mut d = SimDuration::ZERO;
        for t in MemTier::ALL {
            let bps = self.tier.costs(t).read_bps.min(wr);
            d += Self::transfer_time(bytes_by_tier[t.index()], bps);
        }
        d
    }

    /// Buffer-pool refcount charge for `refs` increments/decrements.
    pub fn pool_refs(&self, refs: u64) -> SimDuration {
        SimDuration::from_nanos(self.pool_ref_ns).times(refs)
    }

    /// Exporter-side crash sweep over `slots` reclaimed slot references.
    pub fn pool_sweep(&self, slots: u64) -> SimDuration {
        SimDuration::from_nanos(self.pool_sweep_slot_ns).times(slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;
    const PAGES_1G: u64 = GIB / 4096;

    fn gbps(bytes: u64, d: SimDuration) -> f64 {
        bytes as f64 / d.as_secs_f64() / 1e9
    }

    #[test]
    fn native_attach_pipeline_lands_near_13_gbps() {
        // Kitten walk + Linux remap, per Table 2 row 1 (12.841 GB/s).
        let m = CostModel::default();
        let per_page = m.walk_pte_ns + m.fwk_remap_page_ns;
        let total = SimDuration::from_nanos(per_page).times(PAGES_1G);
        let tput = gbps(GIB, total);
        assert!((12.0..14.0).contains(&tput), "native attach = {tput} GB/s");
    }

    #[test]
    fn vm_attach_pipeline_lands_near_4_gbps() {
        // RB insert at mean depth ~16.6 while mapping 1 GiB, plus map
        // bookkeeping and guest-side mapping (Table 2 row 2: 3.991 GB/s).
        let m = CostModel::default();
        // Measured mean visits for 262,144 sequential inserts is ~30.5.
        let rb_avg = m.rb_insert_base_ns as f64 + m.rb_level_ns as f64 * 30.5;
        let per_page = rb_avg
            + (m.walk_pte_ns + m.vmm_map_bookkeep_ns + m.fwk_remap_page_ns + m.pci_pfn_copy_ns)
                as f64;
        let total = SimDuration::from_secs_f64(per_page * PAGES_1G as f64 / 1e9);
        let tput = gbps(GIB, total);
        assert!((3.5..4.5).contains(&tput), "VM attach = {tput} GB/s");
    }

    #[test]
    fn vm_attach_without_rb_lands_near_8_8_gbps() {
        // End to end (including the exporter's walk), as Table 2 reports.
        let m = CostModel::default();
        let per_page =
            m.walk_pte_ns + m.vmm_map_bookkeep_ns + m.fwk_remap_page_ns + m.pci_pfn_copy_ns;
        let total = SimDuration::from_nanos(per_page).times(PAGES_1G);
        let tput = gbps(GIB, total);
        assert!((8.0..9.6).contains(&tput), "VM attach w/o rb = {tput} GB/s");
    }

    #[test]
    fn one_gib_walk_detour_matches_fig7_band() {
        let m = CostModel::default();
        let d = m.walk(PAGES_1G);
        let ms = d.as_secs_f64() * 1e3;
        assert!((22.0..25.0).contains(&ms), "1 GiB walk detour = {ms} ms");
    }

    #[test]
    fn rdma_stays_under_3_5_gbps() {
        // Wire time plus per-MTU segmentation overhead: the effective
        // rate of the Fig. 5 baseline.
        let m = CostModel::default();
        let segs = GIB / m.rdma_mtu as u64;
        let d = CostModel::transfer_time(GIB, m.rdma_bw_bps)
            + SimDuration::from_nanos(m.rdma_seg_ns).times(segs);
        let tput = gbps(GIB, d);
        assert!((3.0..3.5).contains(&tput), "rdma = {tput} GB/s");
    }

    #[test]
    fn transfer_time_handles_extremes() {
        assert_eq!(CostModel::transfer_time(0, 1_000), SimDuration::ZERO);
        assert_eq!(CostModel::transfer_time(100, 0), SimDuration::ZERO);
        // 1 byte at 1 byte/s = 1 s.
        assert_eq!(CostModel::transfer_time(1, 1), SimDuration::from_secs(1));
        // Large transfer does not overflow: 1 TiB at 1 GB/s ≈ 1099.5 s.
        let d = CostModel::transfer_time(1 << 40, 1_000_000_000);
        assert!((1099.0..1100.0).contains(&d.as_secs_f64()));
    }

    #[test]
    fn arithmetic_charges_equal_per_page_accumulation() {
        // The batched helpers must charge exactly what an equivalent
        // per-page loop would have — this identity is what lets the host
        // side go O(extents) without moving a single virtual nanosecond.
        let m = CostModel::default();
        for pages in [0u64, 1, 7, 511, 512, 513, 262_144] {
            let mut looped = SimDuration::ZERO;
            for _ in 0..pages {
                looped += SimDuration::from_nanos(m.lwk_map_page_ns);
            }
            assert_eq!(
                m.lwk_attach(pages),
                looped + SimDuration::from_nanos(400),
                "lwk_attach({pages})"
            );
            let mut looped = SimDuration::ZERO;
            for _ in 0..pages {
                looped += SimDuration::from_nanos(m.fwk_remap_page_ns / 2);
            }
            assert_eq!(m.fwk_detach(pages), looped, "fwk_detach({pages})");
            let mut looped = SimDuration::ZERO;
            for _ in 0..pages {
                looped += SimDuration::from_nanos(m.fwk_fault_ns + m.frame_alloc_ns);
            }
            assert_eq!(m.fwk_fault_in(pages), looped, "fwk_fault_in({pages})");
        }
        // The VM translate batch: `covered` frames sharing one map entry.
        let mut looped = SimDuration::ZERO;
        for _ in 0..33 {
            looped += SimDuration::from_nanos(m.vmm_translate_floor_ns + m.rb_level_ns * 12);
        }
        assert_eq!(m.vmm_translate(12, 33), looped);
        // Pool batches: refcount and sweep charges equal the per-item loop.
        for n in [0u64, 1, 7, 513] {
            let mut looped = SimDuration::ZERO;
            for _ in 0..n {
                looped += SimDuration::from_nanos(m.pool_ref_ns);
            }
            assert_eq!(m.pool_refs(n), looped, "pool_refs({n})");
            let mut looped = SimDuration::ZERO;
            for _ in 0..n {
                looped += SimDuration::from_nanos(m.pool_sweep_slot_ns);
            }
            assert_eq!(m.pool_sweep(n), looped, "pool_sweep({n})");
        }
    }

    #[test]
    fn tier_stream_matches_dram_stream_on_local() {
        // The LocalDram tier must be charge-neutral: same bandwidth as
        // the flat model and zero per-page surcharges, so pre-tier
        // results are reproduced bit for bit.
        let m = CostModel::default();
        for bytes in [0u64, 1, 4096, 1 << 20, 1 << 30, (1 << 30) + 13] {
            assert_eq!(
                m.tier_stream_read(MemTier::LocalDram, bytes),
                m.dram_stream(bytes),
                "read {bytes}"
            );
            assert_eq!(
                m.tier_stream_write(MemTier::LocalDram, bytes),
                m.dram_stream(bytes),
                "write {bytes}"
            );
        }
        let local_only = [262_144u64, 0, 0, 0];
        assert_eq!(m.tier_walk_surcharge(&local_only), SimDuration::ZERO);
        assert_eq!(m.tier_map_surcharge(&local_only), SimDuration::ZERO);
        assert_eq!(
            m.tier_touch_surcharge(MemTier::LocalDram, 262_144),
            SimDuration::ZERO
        );
    }

    #[test]
    fn tier_surcharges_equal_per_page_accumulation() {
        // The batched per-tier classification must charge exactly what
        // a per-page loop over the same pages would — grouping pages
        // into extents moves no virtual nanoseconds.
        let m = CostModel::default();
        let by_tier = [3u64, 511, 64, 262_144];
        let mut looped_walk = SimDuration::ZERO;
        let mut looped_map = SimDuration::ZERO;
        for t in MemTier::ALL {
            for _ in 0..by_tier[t.index()] {
                looped_walk += SimDuration::from_nanos(m.tier.costs(t).walk_extra_ns);
                looped_map += SimDuration::from_nanos(m.tier.costs(t).map_extra_ns);
            }
        }
        assert_eq!(m.tier_walk_surcharge(&by_tier), looped_walk);
        assert_eq!(m.tier_map_surcharge(&by_tier), looped_map);
        for pages in [0u64, 1, 513] {
            let mut looped = SimDuration::ZERO;
            for _ in 0..pages {
                looped += SimDuration::from_nanos(m.tier.nvm.touch_extra_ns);
            }
            assert_eq!(m.tier_touch_surcharge(MemTier::Nvm, pages), looped);
            let mut looped = SimDuration::ZERO;
            for _ in 0..pages {
                looped += SimDuration::from_nanos(m.tier.migrate_page_ns);
            }
            looped += SimDuration::from_nanos(m.tier.migrate_extent_ns).times(2);
            assert_eq!(m.migrate_remap(2, pages), looped, "migrate_remap({pages})");
        }
    }

    #[test]
    fn migrate_copy_uses_the_slower_endpoint() {
        let m = CostModel::default();
        // NVM → DRAM moves at NVM read bandwidth; DRAM → NVM at NVM
        // write bandwidth.
        let gib = 1u64 << 30;
        let from_nvm = m.migrate_copy(&[0, 0, 0, gib], MemTier::LocalDram);
        assert_eq!(from_nvm, CostModel::transfer_time(gib, m.tier.nvm.read_bps));
        let to_nvm = m.migrate_copy(&[gib, 0, 0, 0], MemTier::Nvm);
        assert_eq!(to_nvm, CostModel::transfer_time(gib, m.tier.nvm.write_bps));
        assert!(to_nvm > from_nvm, "NVM write asymmetry must show up");
    }

    #[test]
    fn cost_model_is_serializable_and_cloneable() {
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<CostModel>();
        let m = CostModel::default();
        assert_eq!(m.clone(), m);
    }
}
