//! Deterministic random numbers for the simulators.
//!
//! All stochastic behaviour (noise arrival, daemon burst lengths, workload
//! jitter) flows through [`SimRng`], a seeded wrapper around `rand`'s
//! `StdRng`. The distribution samplers the noise models need (exponential,
//! normal, lognormal) are implemented here directly — `rand_distr` is not in
//! the approved dependency set, and the implementations are ten lines each.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::time::SimDuration;

/// A seeded, deterministic random number generator with the distribution
/// samplers used by the noise and workload models.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Create from an explicit seed. Equal seeds produce equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derive the child stream for run `index` of a batch rooted at
    /// `root`, statelessly: unlike [`SimRng::fork`] no generator state is
    /// consumed, so the stream depends only on `(root, index)` — never on
    /// how many streams were split before it or on which host thread asks.
    /// This is what gives the parallel run driver scheduling-independent
    /// per-run entropy (see [`crate::run`]).
    pub fn split_stream(root: u64, index: u64) -> SimRng {
        SimRng::seed_from_u64(crate::run::split_seed(root, index))
    }

    /// Derive an independent child stream; used to give each enclave / node
    /// its own generator while keeping the whole experiment reproducible
    /// from one root seed.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        // Mix the salt through splitmix64 so forks with adjacent salts do
        // not produce correlated StdRng seeds.
        let mut z = self.inner.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::seed_from_u64(z)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        self.inner.gen_range(lo..hi)
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Inverse CDF; guard the log argument away from zero.
        let u = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Standard-normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        let u1 = self.unit().max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        mean + stddev * self.standard_normal()
    }

    /// Lognormal sample parameterized by the underlying normal's `mu` and
    /// `sigma` (so the median is `exp(mu)`).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Exponentially distributed duration with the given mean.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(self.exponential(mean.as_secs_f64()))
    }

    /// Normally distributed duration, clamped at zero.
    pub fn normal_duration(&mut self, mean: SimDuration, stddev: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(self.normal(mean.as_secs_f64(), stddev.as_secs_f64()))
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn forks_are_decorrelated_but_deterministic() {
        let mut root1 = SimRng::seed_from_u64(7);
        let mut root2 = SimRng::seed_from_u64(7);
        let mut f1 = root1.fork(1);
        let mut f2 = root2.fork(1);
        assert_eq!(f1.unit().to_bits(), f2.unit().to_bits());

        let mut g1 = SimRng::seed_from_u64(7).fork(1);
        let mut g2 = SimRng::seed_from_u64(7).fork(2);
        let same = (0..32)
            .filter(|_| g1.unit().to_bits() == g2.unit().to_bits())
            .count();
        assert!(same < 4, "sibling forks look correlated");
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((2.8..3.2).contains(&mean), "exp mean = {mean}");
    }

    #[test]
    fn normal_moments_converge() {
        let mut rng = SimRng::seed_from_u64(2);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((9.9..10.1).contains(&mean), "normal mean = {mean}");
        assert!((3.6..4.4).contains(&var), "normal var = {var}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut rng = SimRng::seed_from_u64(3);
        let n = 20_001;
        let mut xs: Vec<f64> = (0..n).map(|_| rng.lognormal(1.0, 0.8)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        let expect = 1.0f64.exp();
        assert!((median - expect).abs() / expect < 0.1, "median = {median}");
    }

    #[test]
    fn durations_are_nonnegative() {
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..1000 {
            // Deliberately stress the clamp with stddev >> mean.
            let d = rng.normal_duration(SimDuration::from_nanos(10), SimDuration::from_micros(10));
            // SimDuration is unsigned; just ensure construction succeeded.
            let _ = d.as_nanos();
        }
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
            let k = rng.uniform_u64(5, 8);
            assert!((5..8).contains(&k));
        }
    }
}
