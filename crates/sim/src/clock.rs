//! A shared virtual clock.
//!
//! Simulator components (kernels, channels, the VMM, workloads) all charge
//! time against a single [`Clock`]. The clock is a cheap clonable handle
//! around an atomic counter so it can be threaded through deeply nested
//! structures without lifetimes, and so stress tests can drive the
//! simulators from multiple OS threads.

use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, monotonically advancing virtual clock.
///
/// Cloning a `Clock` produces another handle to the *same* timeline.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now_ns: Arc<AtomicU64>,
}

impl Clock {
    /// A new clock starting at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_ns.load(Ordering::Relaxed))
    }

    /// Advance the clock by `d`, returning the new time.
    ///
    /// This is the normal way for a component to "spend" simulated time.
    #[inline]
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let ns = self.now_ns.fetch_add(d.as_nanos(), Ordering::Relaxed) + d.as_nanos();
        SimTime::from_nanos(ns)
    }

    /// Advance the clock *to* `t` if `t` is in the future; otherwise leave
    /// it unchanged. Returns the (possibly unchanged) current time.
    ///
    /// Used when an actor waits for an external event whose completion time
    /// was computed on another timeline slice.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let target = t.as_nanos();
        let mut cur = self.now_ns.load(Ordering::Relaxed);
        while cur < target {
            match self.now_ns.compare_exchange_weak(
                cur,
                target,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
        SimTime::from_nanos(cur)
    }

    /// Reset to zero. Only meant for reusing a clock between experiment
    /// repetitions; never called mid-simulation.
    pub fn reset(&self) {
        self.now_ns.store(0, Ordering::Relaxed);
    }

    /// True when both handles refer to the same timeline.
    pub fn same_timeline(&self, other: &Clock) -> bool {
        Arc::ptr_eq(&self.now_ns, &other.now_ns)
    }
}

/// A scoped stopwatch measuring elapsed *virtual* time on a [`Clock`].
#[derive(Debug)]
pub struct Stopwatch {
    clock: Clock,
    start: SimTime,
}

impl Stopwatch {
    /// Start measuring from the clock's current time.
    pub fn start(clock: &Clock) -> Self {
        Stopwatch {
            clock: clock.clone(),
            start: clock.now(),
        }
    }

    /// Virtual time elapsed since the stopwatch started.
    pub fn elapsed(&self) -> SimDuration {
        self.clock.now().duration_since(self.start)
    }

    /// The start timestamp.
    pub fn started_at(&self) -> SimTime {
        self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_a_timeline() {
        let a = Clock::new();
        let b = a.clone();
        a.advance(SimDuration::from_nanos(100));
        assert_eq!(b.now().as_nanos(), 100);
        assert!(a.same_timeline(&b));
        assert!(!a.same_timeline(&Clock::new()));
    }

    #[test]
    fn advance_to_never_rewinds() {
        let c = Clock::new();
        c.advance(SimDuration::from_nanos(500));
        c.advance_to(SimTime::from_nanos(100));
        assert_eq!(c.now().as_nanos(), 500);
        c.advance_to(SimTime::from_nanos(900));
        assert_eq!(c.now().as_nanos(), 900);
    }

    #[test]
    fn stopwatch_measures_virtual_time() {
        let c = Clock::new();
        let sw = Stopwatch::start(&c);
        c.advance(SimDuration::from_micros(7));
        assert_eq!(sw.elapsed(), SimDuration::from_micros(7));
        assert_eq!(sw.started_at(), SimTime::ZERO);
    }

    #[test]
    fn reset_returns_to_zero() {
        let c = Clock::new();
        c.advance(SimDuration::from_secs(1));
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
    }

    #[test]
    fn concurrent_advances_accumulate() {
        let c = Clock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.advance(SimDuration::from_nanos(1));
                    }
                });
            }
        });
        assert_eq!(c.now().as_nanos(), 4000);
    }
}
