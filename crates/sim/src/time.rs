//! Virtual time primitives.
//!
//! All simulated time in the workspace is expressed in integer nanoseconds.
//! [`SimTime`] is an absolute timestamp on the virtual timeline (nanoseconds
//! since simulation start) and [`SimDuration`] is a non-negative interval.
//! Both are thin `u64` newtypes so they are free to copy and hash, and both
//! saturate rather than wrap on overflow: a simulation that runs past
//! `u64::MAX` nanoseconds (~584 years) is a bug, not a wrap-around.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute virtual timestamp, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A non-negative virtual time interval, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the virtual timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// The end of virtual time ("never", for unavailability horizons).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The interval from `earlier` to `self`.
    ///
    /// Saturates to zero if `earlier` is actually later, which keeps
    /// accounting code panic-free in the presence of clock rewinds during
    /// tests.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two timestamps.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two timestamps.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty interval.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            SimDuration(0)
        } else {
            SimDuration((s * 1e9).round() as u64)
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds, as a float (for reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the interval is empty.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by an integer count (e.g. per-page cost × page count).
    #[inline]
    pub fn times(self, n: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(n))
    }

    /// Scale by a float factor (e.g. a contention multiplier). Clamps
    /// negative results to zero.
    #[inline]
    pub fn scaled(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// The larger of two intervals.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two intervals.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        self.times(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// A value together with the virtual time it cost to produce.
///
/// Simulated kernels and devices are *pure* with respect to time: they
/// perform real data-structure work and return the cost, leaving the caller
/// (a protocol engine or experiment driver) to account it on whichever
/// timeline the enclave lives on. This is what lets the Fig. 6 concurrency
/// experiment interleave many enclaves' operations correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Costed<T> {
    /// The operation's result.
    pub value: T,
    /// Virtual time the operation consumed.
    pub cost: SimDuration,
}

impl<T> Costed<T> {
    /// Wrap a value with its cost.
    pub fn new(value: T, cost: SimDuration) -> Self {
        Costed { value, cost }
    }

    /// Transform the value, keeping the cost.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Costed<U> {
        Costed {
            value: f(self.value),
            cost: self.cost,
        }
    }

    /// Add extra cost.
    pub fn plus(mut self, extra: SimDuration) -> Self {
        self.cost += extra;
        self
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_nanos(1_000);
        let d = SimDuration::from_nanos(500);
        assert_eq!((t + d).as_nanos(), 1_500);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).duration_since(t), d);
    }

    #[test]
    fn duration_since_saturates() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(20);
        assert_eq!(early.duration_since(late), SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn from_secs_f64_clamps_garbage() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn scaled_and_times() {
        let d = SimDuration::from_nanos(100);
        assert_eq!(d.times(3).as_nanos(), 300);
        assert_eq!(d.scaled(2.5).as_nanos(), 250);
        assert_eq!(d.scaled(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats_scale() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.00us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn saturating_add_at_extremes() {
        let huge = SimDuration::from_nanos(u64::MAX);
        assert_eq!(huge + huge, huge);
        let t = SimTime::from_nanos(u64::MAX);
        assert_eq!((t + SimDuration::from_nanos(1)).as_nanos(), u64::MAX);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }
}
