//! Deterministic fault injection for the simulated system.
//!
//! A [`FaultPlan`] is an explicit, virtual-time-stamped schedule of failures
//! — enclave crashes, process kills, name-server outages of bounded
//! duration, and message drop/duplication windows on the forwarding
//! channels. A [`FaultInjector`] executes a plan: the system polls it as
//! virtual time advances and receives the due [`FaultEvent`]s, and consults
//! it on every name-server transaction and forwarded hop.
//!
//! Everything is deterministic: discrete events fire at the exact virtual
//! times in the plan, and the probabilistic drop/duplication decisions
//! inside a window are drawn from a [`SimRng`] forked from the injector's
//! seed, so identical plans + seeds reproduce identical failure histories.
//!
//! This crate sits below `xemem-core`, so enclaves and processes are
//! referred to by plain indices (`usize` slot index, `u32` pid) and the
//! core crate maps them onto its own handle types.

use crate::rng::SimRng;
use crate::tier::MemTier;
use crate::time::{SimDuration, SimTime};

/// What kind of failure fires at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The whole enclave at this slot index dies abruptly.
    EnclaveCrash {
        /// Slot index of the enclave (as reported by the system's topology).
        slot: usize,
    },
    /// One process in an enclave is killed without running cleanup code.
    ProcessKill {
        /// Slot index of the enclave hosting the process.
        slot: usize,
        /// Kernel pid of the victim within that enclave.
        pid: u32,
    },
    /// The name service stops answering for a bounded duration.
    NameServerOutage {
        /// How long the outage lasts; lookups retry or degrade until then.
        duration: SimDuration,
        /// `None` hits every shard (the original whole-service outage);
        /// `Some(s)` silences only shard `s` of a sharded name service.
        shard: Option<usize>,
    },
    /// A buffer-pool consumer enclave dies while holding slot references.
    /// Semantically an [`FaultKind::EnclaveCrash`], plus a declared
    /// highest pool-slot index the consumer may be holding when it dies
    /// (so plans can be validated against the pool's capacity up front).
    PoolConsumerCrash {
        /// Slot index of the consumer enclave.
        slot: usize,
        /// Highest pool-slot index the scenario lets this consumer hold.
        pool_slot: usize,
    },
    /// One memory tier of one enclave stops accepting migrations for a
    /// bounded duration (a failed CXL link, an NVM device resetting).
    /// Reads of already-placed data keep working; the migration policy
    /// must skip the tier until the outage ends.
    TierOutage {
        /// Slot index of the enclave whose tier goes dark.
        slot: usize,
        /// The affected tier.
        tier: MemTier,
        /// How long migrations into the tier fail.
        duration: SimDuration,
    },
}

/// A scheduled failure: a kind plus the virtual instant it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual time at which the failure takes effect.
    pub at: SimTime,
    /// The failure itself.
    pub kind: FaultKind,
}

/// A window of virtual time during which forwarded messages are unreliable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LossWindow {
    from: SimTime,
    until: SimTime,
    /// Per-hop probability of the effect (drop or duplicate) applying.
    probability_ppm: u32,
}

impl LossWindow {
    fn contains(&self, at: SimTime) -> bool {
        at >= self.from && at < self.until
    }
}

/// An explicit schedule of failures, built up then handed to the system.
///
/// Events may be added in any order; the plan sorts them by time. Times are
/// virtual (`SimTime`), so a plan composed for one seed reproduces the same
/// failure history on every run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    drop_windows: Vec<LossWindow>,
    duplicate_windows: Vec<LossWindow>,
    /// Declared buffer-pool capacity (slot count) the plan's pool
    /// scenarios run against; `None` when the plan has no pool events.
    pool_capacity: Option<usize>,
    /// Declared set of memory tiers the plan's tier scenarios run
    /// against; `None` when the plan has no tier events.
    tiers_configured: Option<Vec<MemTier>>,
}

impl FaultPlan {
    /// An empty plan (no failures).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule the enclave at `slot` to crash at virtual time `at`.
    pub fn crash_enclave(mut self, at: SimTime, slot: usize) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::EnclaveCrash { slot },
        });
        self
    }

    /// Schedule the process `pid` in enclave `slot` to be killed at `at`.
    pub fn kill_process(mut self, at: SimTime, slot: usize, pid: u32) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::ProcessKill { slot, pid },
        });
        self
    }

    /// Schedule a whole-service name-server outage of `duration`
    /// starting at `at` (every shard goes silent).
    pub fn name_server_outage(mut self, at: SimTime, duration: SimDuration) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::NameServerOutage {
                duration,
                shard: None,
            },
        });
        self
    }

    /// Schedule an outage of `duration` starting at `at` scoped to a
    /// single shard of the name service; other shards keep answering.
    pub fn name_server_shard_outage(
        mut self,
        at: SimTime,
        shard: usize,
        duration: SimDuration,
    ) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::NameServerOutage {
                duration,
                shard: Some(shard),
            },
        });
        self
    }

    /// Declare the capacity (slot count) of the buffer pool the plan's
    /// pool scenarios target; [`FaultPlan::validate`] checks every
    /// [`FaultKind::PoolConsumerCrash`] against it.
    pub fn pool_capacity(mut self, slots: usize) -> Self {
        self.pool_capacity = Some(slots);
        self
    }

    /// Schedule the pool-consumer enclave at `slot` to crash at `at`
    /// while it may hold pool slots up to index `pool_slot`.
    pub fn pool_consumer_crash(mut self, at: SimTime, slot: usize, pool_slot: usize) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::PoolConsumerCrash { slot, pool_slot },
        });
        self
    }

    /// Declare the memory tiers the plan's tier scenarios target;
    /// [`FaultPlan::validate`] checks every [`FaultKind::TierOutage`]
    /// against the set.
    pub fn tiers_configured(mut self, tiers: &[MemTier]) -> Self {
        self.tiers_configured = Some(tiers.to_vec());
        self
    }

    /// Schedule tier `tier` of the enclave at `slot` to reject
    /// migrations for `duration` starting at `at`.
    pub fn tier_outage(
        mut self,
        at: SimTime,
        slot: usize,
        tier: MemTier,
        duration: SimDuration,
    ) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::TierOutage {
                slot,
                tier,
                duration,
            },
        });
        self
    }

    /// During `[from, from + duration)`, drop each forwarded hop with the
    /// given probability (0.0–1.0).
    pub fn drop_messages(mut self, from: SimTime, duration: SimDuration, probability: f64) -> Self {
        self.drop_windows.push(LossWindow {
            from,
            until: from + duration,
            probability_ppm: to_ppm(probability),
        });
        self
    }

    /// During `[from, from + duration)`, deliver each forwarded hop twice
    /// with the given probability (0.0–1.0).
    pub fn duplicate_messages(
        mut self,
        from: SimTime,
        duration: SimDuration,
        probability: f64,
    ) -> Self {
        self.duplicate_windows.push(LossWindow {
            from,
            until: from + duration,
            probability_ppm: to_ppm(probability),
        });
        self
    }

    /// Number of discrete scheduled events (crashes, kills, outages).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.drop_windows.is_empty() && self.duplicate_windows.is_empty()
    }

    /// The scheduled discrete events, not yet sorted.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Generate a random-but-reproducible plan: `n_events` discrete faults
    /// spread over `[0, horizon)`, aimed at `slots` enclaves each assumed
    /// to host pids `1..=max_pid`. Equal `rng` states produce equal plans.
    pub fn random(
        rng: &mut SimRng,
        horizon: SimTime,
        slots: usize,
        max_pid: u32,
        n_events: usize,
    ) -> Self {
        Self::random_sharded(rng, horizon, slots, max_pid, n_events, 1)
    }

    /// Like [`FaultPlan::random`], but aware of a sharded name service
    /// with `n_shards` shards: the name-server outages it generates are
    /// scoped to a random shard when `n_shards > 1` (a plan built with
    /// `n_shards == 1` is identical to the unsharded generator, drawing
    /// the same randomness in the same order).
    pub fn random_sharded(
        rng: &mut SimRng,
        horizon: SimTime,
        slots: usize,
        max_pid: u32,
        n_events: usize,
        n_shards: usize,
    ) -> Self {
        assert!(slots > 0 && max_pid > 0 && n_shards > 0);
        let mut plan = FaultPlan::new();
        let span = horizon.as_nanos().max(1);
        for _ in 0..n_events {
            let at = SimTime::from_nanos(rng.uniform_u64(0, span));
            let slot = rng.uniform_u64(0, slots as u64) as usize;
            plan = match rng.uniform_u64(0, 4) {
                0 => plan.crash_enclave(at, slot),
                1 => plan.kill_process(at, slot, rng.uniform_u64(1, u64::from(max_pid) + 1) as u32),
                2 => {
                    let duration =
                        SimDuration::from_nanos(rng.uniform_u64(1_000, span / 4 + 2_000));
                    if n_shards > 1 {
                        let shard = rng.uniform_u64(0, n_shards as u64) as usize;
                        plan.name_server_shard_outage(at, shard, duration)
                    } else {
                        plan.name_server_outage(at, duration)
                    }
                }
                _ => plan.drop_messages(
                    at,
                    SimDuration::from_nanos(rng.uniform_u64(1_000, span / 4 + 2_000)),
                    rng.uniform(0.05, 0.5),
                ),
            };
        }
        plan
    }

    /// Check the plan against the topology it will run on: `n_slots`
    /// built enclave slots and `n_shards` name-service shards. Rejects
    /// schedules that could never fire as written — crash/kill targets
    /// referencing never-created enclaves, pid 0 (kernel) kills, outages
    /// aimed at nonexistent shards, and degenerate (empty) loss or
    /// outage windows — with a description of the offending entry.
    pub fn validate(&self, n_slots: usize, n_shards: usize) -> Result<(), String> {
        for event in &self.events {
            match event.kind {
                FaultKind::EnclaveCrash { slot } => {
                    if slot >= n_slots {
                        return Err(format!(
                            "fault plan targets enclave slot {slot} at t={} ns, \
                             but only {n_slots} slots exist",
                            event.at.as_nanos()
                        ));
                    }
                }
                FaultKind::ProcessKill { slot, pid } => {
                    if slot >= n_slots {
                        return Err(format!(
                            "fault plan kills pid {pid} in enclave slot {slot} at t={} ns, \
                             but only {n_slots} slots exist",
                            event.at.as_nanos()
                        ));
                    }
                    if pid == 0 {
                        return Err(format!(
                            "fault plan kills pid 0 in slot {slot} at t={} ns; \
                             pid 0 is the kernel, not a process",
                            event.at.as_nanos()
                        ));
                    }
                }
                FaultKind::NameServerOutage { duration, shard } => {
                    if duration == SimDuration::ZERO {
                        return Err(format!(
                            "fault plan schedules a zero-length name-server outage at t={} ns; \
                             the window [start, start) can never fire",
                            event.at.as_nanos()
                        ));
                    }
                    if let Some(shard) = shard {
                        if shard >= n_shards {
                            return Err(format!(
                                "fault plan targets name-service shard {shard} at t={} ns, \
                                 but only {n_shards} shards exist",
                                event.at.as_nanos()
                            ));
                        }
                    }
                }
                FaultKind::PoolConsumerCrash { slot, pool_slot } => {
                    if slot >= n_slots {
                        return Err(format!(
                            "fault plan crashes pool consumer in enclave slot {slot} at t={} ns, \
                             but only {n_slots} slots exist",
                            event.at.as_nanos()
                        ));
                    }
                    match self.pool_capacity {
                        None => {
                            return Err(format!(
                                "fault plan schedules a pool consumer crash at t={} ns \
                                 without declaring a pool capacity; call pool_capacity(n) first",
                                event.at.as_nanos()
                            ));
                        }
                        Some(capacity) if pool_slot >= capacity => {
                            return Err(format!(
                                "fault plan references pool slot {pool_slot} at t={} ns, \
                                 but the declared pool capacity is {capacity} slots",
                                event.at.as_nanos()
                            ));
                        }
                        Some(_) => {}
                    }
                }
                FaultKind::TierOutage {
                    slot,
                    tier,
                    duration,
                } => {
                    if slot >= n_slots {
                        return Err(format!(
                            "fault plan darkens tier {tier} of enclave slot {slot} at t={} ns, \
                             but only {n_slots} slots exist",
                            event.at.as_nanos()
                        ));
                    }
                    if duration == SimDuration::ZERO {
                        return Err(format!(
                            "fault plan schedules a zero-length outage of tier {tier} at t={} ns; \
                             the window [start, start) can never fire",
                            event.at.as_nanos()
                        ));
                    }
                    match &self.tiers_configured {
                        None => {
                            return Err(format!(
                                "fault plan schedules a tier outage at t={} ns without \
                                 declaring the configured tiers; call tiers_configured(..) first",
                                event.at.as_nanos()
                            ));
                        }
                        Some(tiers) if !tiers.contains(&tier) => {
                            return Err(format!(
                                "fault plan references tier {tier} at t={} ns, \
                                 but the declared tier set is {:?}",
                                event.at.as_nanos(),
                                tiers.iter().map(|t| t.as_str()).collect::<Vec<_>>()
                            ));
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        for (label, windows) in [
            ("drop", &self.drop_windows),
            ("duplicate", &self.duplicate_windows),
        ] {
            for w in windows {
                if w.until <= w.from {
                    return Err(format!(
                        "fault plan {label} window ends at {} ns, at or before its start {} ns; \
                         the window can never fire",
                        w.until.as_nanos(),
                        w.from.as_nanos()
                    ));
                }
            }
        }
        Ok(())
    }
}

fn to_ppm(probability: f64) -> u32 {
    assert!(
        (0.0..=1.0).contains(&probability),
        "probability must be within [0, 1], got {probability}"
    );
    (probability * 1_000_000.0).round() as u32
}

/// Executes a [`FaultPlan`] deterministically as virtual time advances.
///
/// The owning system calls [`FaultInjector::due_events`] whenever its clock
/// moves, applies the returned failures, and consults
/// [`FaultInjector::ns_available`] / [`FaultInjector::should_drop`] /
/// [`FaultInjector::should_duplicate`] on the affected paths.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Events sorted by time; `cursor` indexes the next undelivered one.
    events: Vec<FaultEvent>,
    cursor: usize,
    drop_windows: Vec<LossWindow>,
    duplicate_windows: Vec<LossWindow>,
    /// End of the current whole-service name-server outage, if active.
    ns_outage_until: Option<SimTime>,
    /// Per-shard outage horizons (shard-scoped outages only; the global
    /// horizon above applies to every shard on top of these).
    shard_outage_until: std::collections::BTreeMap<usize, SimTime>,
    /// Per-(enclave slot, tier) migration-outage horizons.
    tier_outage_until: std::collections::BTreeMap<(usize, MemTier), SimTime>,
    rng: SimRng,
}

impl FaultInjector {
    /// Build an injector for `plan`, drawing probabilistic decisions from
    /// a stream forked deterministically from `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        let mut events = plan.events;
        events.sort_by_key(|e| e.at);
        FaultInjector {
            events,
            cursor: 0,
            drop_windows: plan.drop_windows,
            duplicate_windows: plan.duplicate_windows,
            ns_outage_until: None,
            shard_outage_until: std::collections::BTreeMap::new(),
            tier_outage_until: std::collections::BTreeMap::new(),
            rng: SimRng::seed_from_u64(seed).fork(0xFA_17),
        }
    }

    /// All discrete events scheduled at or before `now` that have not been
    /// returned yet, in schedule order. Name-server outages update the
    /// injector's outage horizon as a side effect (and are also returned,
    /// so the caller can record them in its trace).
    pub fn due_events(&mut self, now: SimTime) -> Vec<FaultEvent> {
        let mut due = Vec::new();
        while let Some(&event) = self.events.get(self.cursor) {
            if event.at > now {
                break;
            }
            self.cursor += 1;
            if let FaultKind::NameServerOutage { duration, shard } = event.kind {
                let until = event.at + duration;
                // Overlapping outages extend each other.
                match shard {
                    None => {
                        self.ns_outage_until = Some(match self.ns_outage_until {
                            Some(existing) if existing > until => existing,
                            _ => until,
                        });
                    }
                    Some(shard) => {
                        let entry = self.shard_outage_until.entry(shard).or_insert(until);
                        if until > *entry {
                            *entry = until;
                        }
                    }
                }
            }
            if let FaultKind::TierOutage {
                slot,
                tier,
                duration,
            } = event.kind
            {
                let until = event.at + duration;
                let entry = self.tier_outage_until.entry((slot, tier)).or_insert(until);
                if until > *entry {
                    *entry = until;
                }
            }
            due.push(event);
        }
        due
    }

    /// Does the name server answer at virtual time `at`?
    ///
    /// Callers must have drained [`due_events`](Self::due_events) up to
    /// `at` first so outage starts have been observed.
    pub fn ns_available(&self, at: SimTime) -> bool {
        match self.ns_outage_until {
            Some(until) => at >= until,
            None => true,
        }
    }

    /// When the current outage ends, if one is active at `at`.
    pub fn ns_outage_until(&self, at: SimTime) -> Option<SimTime> {
        self.ns_outage_until.filter(|&until| at < until)
    }

    /// Does shard `shard` of the name service answer at virtual time
    /// `at`? A shard is silent during both whole-service outages and
    /// outages scoped to it specifically.
    pub fn ns_shard_available(&self, shard: usize, at: SimTime) -> bool {
        self.ns_available(at)
            && match self.shard_outage_until.get(&shard) {
                Some(&until) => at >= until,
                None => true,
            }
    }

    /// When the outage silencing shard `shard` ends, if one is active
    /// at `at` (the later of the whole-service and shard-scoped
    /// horizons).
    pub fn ns_shard_outage_until(&self, shard: usize, at: SimTime) -> Option<SimTime> {
        let global = self.ns_outage_until(at);
        let scoped = self
            .shard_outage_until
            .get(&shard)
            .copied()
            .filter(|&until| at < until);
        match (global, scoped) {
            (Some(g), Some(s)) => Some(g.max(s)),
            (g, s) => g.or(s),
        }
    }

    /// Does tier `tier` of the enclave at `slot` accept migrations at
    /// virtual time `at`? Callers must have drained
    /// [`due_events`](Self::due_events) up to `at` first.
    pub fn tier_available(&self, slot: usize, tier: MemTier, at: SimTime) -> bool {
        match self.tier_outage_until.get(&(slot, tier)) {
            Some(&until) => at >= until,
            None => true,
        }
    }

    /// When the outage darkening `(slot, tier)` ends, if one is active
    /// at `at`.
    pub fn tier_outage_until(&self, slot: usize, tier: MemTier, at: SimTime) -> Option<SimTime> {
        self.tier_outage_until
            .get(&(slot, tier))
            .copied()
            .filter(|&until| at < until)
    }

    /// Should a forwarded hop sent at `at` be dropped? Draws from the
    /// injector's RNG only when inside a drop window, so plans without
    /// windows consume no randomness.
    pub fn should_drop(&mut self, at: SimTime) -> bool {
        Self::roll(&self.drop_windows, &mut self.rng, at)
    }

    /// Should a forwarded hop sent at `at` be delivered twice?
    pub fn should_duplicate(&mut self, at: SimTime) -> bool {
        Self::roll(&self.duplicate_windows, &mut self.rng, at)
    }

    fn roll(windows: &[LossWindow], rng: &mut SimRng, at: SimTime) -> bool {
        let Some(window) = windows.iter().find(|w| w.contains(at)) else {
            return false;
        };
        rng.chance(f64::from(window.probability_ppm) / 1_000_000.0)
    }

    /// True when every scheduled discrete event has been delivered.
    pub fn exhausted(&self) -> bool {
        self.cursor == self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_once_in_time_order() {
        let plan = FaultPlan::new()
            .kill_process(SimTime::from_nanos(500), 1, 3)
            .crash_enclave(SimTime::from_nanos(100), 0);
        let mut inj = FaultInjector::new(plan, 7);
        assert!(inj.due_events(SimTime::from_nanos(50)).is_empty());
        let first = inj.due_events(SimTime::from_nanos(100));
        assert_eq!(
            first,
            vec![FaultEvent {
                at: SimTime::from_nanos(100),
                kind: FaultKind::EnclaveCrash { slot: 0 },
            }]
        );
        // Already-delivered events do not repeat.
        assert!(inj.due_events(SimTime::from_nanos(100)).is_empty());
        let second = inj.due_events(SimTime::from_nanos(10_000));
        assert_eq!(second.len(), 1);
        assert!(inj.exhausted());
    }

    #[test]
    fn ns_outage_window_opens_and_closes() {
        let plan = FaultPlan::new()
            .name_server_outage(SimTime::from_nanos(1_000), SimDuration::from_nanos(500));
        let mut inj = FaultInjector::new(plan, 1);
        assert!(inj.ns_available(SimTime::from_nanos(999)));
        inj.due_events(SimTime::from_nanos(1_000));
        assert!(!inj.ns_available(SimTime::from_nanos(1_000)));
        assert!(!inj.ns_available(SimTime::from_nanos(1_499)));
        assert!(inj.ns_available(SimTime::from_nanos(1_500)));
        assert_eq!(
            inj.ns_outage_until(SimTime::from_nanos(1_200)),
            Some(SimTime::from_nanos(1_500))
        );
        assert_eq!(inj.ns_outage_until(SimTime::from_nanos(1_600)), None);
    }

    #[test]
    fn overlapping_outages_extend() {
        let plan = FaultPlan::new()
            .name_server_outage(SimTime::from_nanos(0), SimDuration::from_nanos(1_000))
            .name_server_outage(SimTime::from_nanos(500), SimDuration::from_nanos(1_000));
        let mut inj = FaultInjector::new(plan, 1);
        inj.due_events(SimTime::from_nanos(600));
        assert!(!inj.ns_available(SimTime::from_nanos(1_200)));
        assert!(inj.ns_available(SimTime::from_nanos(1_500)));
    }

    #[test]
    fn drop_decisions_only_inside_windows_and_deterministic() {
        let plan = FaultPlan::new().drop_messages(
            SimTime::from_nanos(1_000),
            SimDuration::from_nanos(1_000),
            0.5,
        );
        let run = |seed| {
            let mut inj = FaultInjector::new(plan.clone(), seed);
            (0..100)
                .map(|i| inj.should_drop(SimTime::from_nanos(1_000 + i * 10)))
                .collect::<Vec<_>>()
        };
        // Outside the window: never drops, consumes no randomness.
        let mut inj = FaultInjector::new(plan.clone(), 3);
        assert!(!inj.should_drop(SimTime::from_nanos(0)));
        assert!(!inj.should_drop(SimTime::from_nanos(2_000)));
        // Inside: a mix of outcomes, identical across equal seeds.
        let a = run(9);
        assert!(a.iter().any(|&d| d) && a.iter().any(|&d| !d));
        assert_eq!(a, run(9));
        assert_ne!(a, run(10));
    }

    #[test]
    fn zero_probability_never_fires_one_always_fires() {
        let plan = FaultPlan::new()
            .drop_messages(SimTime::ZERO, SimDuration::from_nanos(100), 0.0)
            .duplicate_messages(SimTime::ZERO, SimDuration::from_nanos(100), 1.0);
        let mut inj = FaultInjector::new(plan, 5);
        for i in 0..50 {
            let at = SimTime::from_nanos(i);
            assert!(!inj.should_drop(at));
            assert!(inj.should_duplicate(at));
        }
    }

    #[test]
    fn shard_outages_silence_only_their_shard() {
        let plan = FaultPlan::new().name_server_shard_outage(
            SimTime::from_nanos(1_000),
            1,
            SimDuration::from_nanos(500),
        );
        let mut inj = FaultInjector::new(plan, 1);
        inj.due_events(SimTime::from_nanos(1_000));
        let at = SimTime::from_nanos(1_200);
        // The whole-service view stays up; only shard 1 is silent.
        assert!(inj.ns_available(at));
        assert!(inj.ns_shard_available(0, at));
        assert!(!inj.ns_shard_available(1, at));
        assert_eq!(
            inj.ns_shard_outage_until(1, at),
            Some(SimTime::from_nanos(1_500))
        );
        assert_eq!(inj.ns_shard_outage_until(0, at), None);
        assert!(inj.ns_shard_available(1, SimTime::from_nanos(1_500)));
    }

    #[test]
    fn global_outage_silences_every_shard() {
        let plan = FaultPlan::new()
            .name_server_outage(SimTime::from_nanos(0), SimDuration::from_nanos(2_000))
            .name_server_shard_outage(SimTime::from_nanos(0), 2, SimDuration::from_nanos(1_000));
        let mut inj = FaultInjector::new(plan, 1);
        inj.due_events(SimTime::ZERO);
        let at = SimTime::from_nanos(500);
        assert!(!inj.ns_shard_available(0, at));
        assert!(!inj.ns_shard_available(2, at));
        // Shard 2's horizon is the *later* of global and scoped ends.
        assert_eq!(
            inj.ns_shard_outage_until(2, at),
            Some(SimTime::from_nanos(2_000))
        );
        assert!(inj.ns_shard_available(2, SimTime::from_nanos(2_000)));
    }

    #[test]
    fn validate_accepts_well_formed_plans() {
        let plan = FaultPlan::new()
            .crash_enclave(SimTime::from_nanos(10), 2)
            .kill_process(SimTime::from_nanos(20), 0, 7)
            .name_server_outage(SimTime::from_nanos(30), SimDuration::from_nanos(1))
            .name_server_shard_outage(SimTime::from_nanos(40), 3, SimDuration::from_nanos(5))
            .drop_messages(SimTime::ZERO, SimDuration::from_nanos(100), 0.5)
            .pool_capacity(16)
            .pool_consumer_crash(SimTime::from_nanos(50), 1, 15)
            .tiers_configured(&[MemTier::LocalDram, MemTier::Nvm])
            .tier_outage(
                SimTime::from_nanos(60),
                2,
                MemTier::Nvm,
                SimDuration::from_nanos(500),
            );
        assert_eq!(plan.validate(3, 4), Ok(()));
    }

    #[test]
    fn tier_outages_scope_to_their_slot_and_tier() {
        let plan = FaultPlan::new()
            .tiers_configured(&[MemTier::Cxl, MemTier::Nvm])
            .tier_outage(
                SimTime::from_nanos(1_000),
                1,
                MemTier::Cxl,
                SimDuration::from_nanos(500),
            )
            .tier_outage(
                SimTime::from_nanos(1_200),
                1,
                MemTier::Cxl,
                SimDuration::from_nanos(600),
            );
        assert_eq!(plan.validate(2, 1), Ok(()));
        let mut inj = FaultInjector::new(plan, 1);
        let at = SimTime::from_nanos(1_300);
        inj.due_events(at);
        // Only (slot 1, Cxl) is dark; other slots and tiers answer.
        assert!(!inj.tier_available(1, MemTier::Cxl, at));
        assert!(inj.tier_available(0, MemTier::Cxl, at));
        assert!(inj.tier_available(1, MemTier::Nvm, at));
        // Overlapping outages extend: 1200 + 600 = 1800.
        assert_eq!(
            inj.tier_outage_until(1, MemTier::Cxl, at),
            Some(SimTime::from_nanos(1_800))
        );
        assert!(inj.tier_available(1, MemTier::Cxl, SimTime::from_nanos(1_800)));
    }

    #[test]
    fn validate_rejects_malformed_tier_plans() {
        let cases: Vec<(FaultPlan, &str)> = vec![
            (
                FaultPlan::new().tier_outage(
                    SimTime::from_nanos(10),
                    0,
                    MemTier::Nvm,
                    SimDuration::from_nanos(5),
                ),
                "without declaring the configured tiers",
            ),
            (
                FaultPlan::new()
                    .tiers_configured(&[MemTier::LocalDram, MemTier::RemoteNuma])
                    .tier_outage(
                        SimTime::from_nanos(10),
                        0,
                        MemTier::Nvm,
                        SimDuration::from_nanos(5),
                    ),
                "tier nvm",
            ),
            (
                FaultPlan::new()
                    .tiers_configured(&[MemTier::Nvm])
                    .tier_outage(
                        SimTime::from_nanos(10),
                        7,
                        MemTier::Nvm,
                        SimDuration::from_nanos(5),
                    ),
                "slot 7",
            ),
            (
                FaultPlan::new()
                    .tiers_configured(&[MemTier::Nvm])
                    .tier_outage(SimTime::from_nanos(10), 0, MemTier::Nvm, SimDuration::ZERO),
                "zero-length",
            ),
        ];
        for (plan, needle) in cases {
            let err = plan.validate(3, 4).unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }

    #[test]
    fn validate_rejects_malformed_plans() {
        let cases: Vec<(FaultPlan, &str)> = vec![
            (
                FaultPlan::new().crash_enclave(SimTime::from_nanos(10), 5),
                "slot 5",
            ),
            (
                FaultPlan::new().kill_process(SimTime::from_nanos(10), 9, 1),
                "slot 9",
            ),
            (
                FaultPlan::new().kill_process(SimTime::from_nanos(10), 0, 0),
                "pid 0",
            ),
            (
                FaultPlan::new().name_server_outage(SimTime::from_nanos(10), SimDuration::ZERO),
                "zero-length",
            ),
            (
                FaultPlan::new().name_server_shard_outage(
                    SimTime::from_nanos(10),
                    4,
                    SimDuration::from_nanos(5),
                ),
                "shard 4",
            ),
            (
                FaultPlan::new().drop_messages(SimTime::from_nanos(10), SimDuration::ZERO, 0.5),
                "drop window",
            ),
            (
                FaultPlan::new().duplicate_messages(
                    SimTime::from_nanos(10),
                    SimDuration::ZERO,
                    0.5,
                ),
                "duplicate window",
            ),
            (
                FaultPlan::new().pool_capacity(8).pool_consumer_crash(
                    SimTime::from_nanos(10),
                    6,
                    0,
                ),
                "slot 6",
            ),
            (
                FaultPlan::new().pool_capacity(8).pool_consumer_crash(
                    SimTime::from_nanos(10),
                    1,
                    8,
                ),
                "pool slot 8",
            ),
            (
                FaultPlan::new().pool_consumer_crash(SimTime::from_nanos(10), 1, 0),
                "without declaring a pool capacity",
            ),
        ];
        for (plan, needle) in cases {
            let err = plan.validate(3, 4).unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }

    #[test]
    fn sharded_random_plans_scope_outages_and_stay_reproducible() {
        let build = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            FaultPlan::random_sharded(&mut rng, SimTime::from_nanos(1_000_000), 3, 8, 24, 4)
        };
        assert_eq!(build(5), build(5));
        let plan = build(5);
        assert_eq!(plan.validate(3, 4), Ok(()));
        assert!(plan
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::NameServerOutage { shard: Some(_), .. })));
        // With a single shard the sharded generator is the plain one.
        let plain = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            FaultPlan::random(&mut rng, SimTime::from_nanos(1_000_000), 3, 8, 24)
        };
        let single = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            FaultPlan::random_sharded(&mut rng, SimTime::from_nanos(1_000_000), 3, 8, 24, 1)
        };
        assert_eq!(plain(7), single(7));
    }

    #[test]
    fn random_plans_are_reproducible() {
        let build = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            FaultPlan::random(&mut rng, SimTime::from_nanos(1_000_000), 3, 8, 12)
        };
        assert_eq!(build(11), build(11));
        assert_ne!(build(11), build(12));
        assert_eq!(build(11).len(), 12 - build(11).drop_windows.len());
    }
}
