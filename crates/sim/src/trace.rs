//! Timestamped event recording.
//!
//! The Selfish Detour reproduction (paper Fig. 7) emits a time series of
//! (timestamp, detour-duration, label) samples; [`Trace`] is the small
//! append-only recorder the workloads use for that, and for debugging
//! protocol flows in tests.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One recorded trace sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When the event occurred.
    pub at: SimTime,
    /// Duration associated with the event (zero for instantaneous marks).
    pub duration: SimDuration,
    /// Free-form label (e.g. `"detour:1GB"`).
    pub label: String,
}

/// An append-only event recorder.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// A fresh empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an event.
    pub fn record(&mut self, at: SimTime, duration: SimDuration, label: impl Into<String>) {
        self.events.push(TraceEvent {
            at,
            duration,
            label: label.into(),
        });
    }

    /// All events, in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events whose label matches the given prefix.
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events
            .iter()
            .filter(move |e| e.label.starts_with(prefix))
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let mut t = Trace::new();
        t.record(
            SimTime::from_nanos(1),
            SimDuration::from_nanos(10),
            "detour:hw",
        );
        t.record(
            SimTime::from_nanos(2),
            SimDuration::from_nanos(20),
            "attach:1GB",
        );
        t.record(
            SimTime::from_nanos(3),
            SimDuration::from_nanos(30),
            "detour:smi",
        );
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        let detours: Vec<_> = t.with_prefix("detour:").collect();
        assert_eq!(detours.len(), 2);
        assert_eq!(detours[1].duration.as_nanos(), 30);
    }

    #[test]
    fn empty_trace_is_empty() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.events().len(), 0);
    }
}
