//! Property tests for the simulation substrate: noise-stream ordering,
//! the noise fixed-point's monotonicity, and the calendar resource's
//! no-overlap/conservation invariants.

use proptest::prelude::*;
use xemem_sim::des::Resource;
use xemem_sim::noise::{finish_time_with_noise, CompositeNoise, NoiseGen};
use xemem_sim::{SimDuration, SimRng, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn noise_streams_are_ordered_across_windows(seed in any::<u64>(), windows in 1u64..20) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut gen = CompositeNoise::fwk(&mut rng);
        let mut last = SimTime::ZERO;
        let step = SimDuration::from_millis(50);
        let mut cursor = SimTime::ZERO;
        for _ in 0..windows {
            let next = cursor + step;
            for e in gen.events_in(cursor, next) {
                prop_assert!(e.start >= cursor && e.start < next, "event outside its window");
                prop_assert!(e.start >= last, "events regressed in time");
                last = e.start;
            }
            cursor = next;
        }
    }

    #[test]
    fn finish_time_is_at_least_start_plus_work(seed in any::<u64>(), work_us in 1u64..100_000) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut gen = CompositeNoise::fwk(&mut rng);
        let start = SimTime::from_nanos(17);
        let work = SimDuration::from_micros(work_us);
        let end = finish_time_with_noise(&mut gen, start, work);
        prop_assert!(end >= start + work, "noise can only delay completion");
    }

    #[test]
    fn noise_is_deterministic_per_seed(seed in any::<u64>()) {
        let run = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut gen = CompositeNoise::fwk(&mut rng);
            gen.events_in(SimTime::ZERO, SimTime::from_nanos(1_000_000_000))
                .iter()
                .map(|e| (e.start.as_nanos(), e.duration.as_nanos()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn resource_grants_never_overlap(
        requests in prop::collection::vec((0u64..10_000, 1u64..500), 1..120)
    ) {
        let mut r = Resource::new();
        let mut grants = Vec::new();
        let mut total_service = 0u64;
        for (at, service) in requests {
            let g = r.acquire(SimTime::from_nanos(at), SimDuration::from_nanos(service));
            prop_assert!(g.start >= SimTime::from_nanos(at), "grant before arrival");
            prop_assert_eq!(g.end.as_nanos() - g.start.as_nanos(), service);
            grants.push(g);
            total_service += service;
        }
        grants.sort_by_key(|g| g.start);
        for w in grants.windows(2) {
            prop_assert!(w[0].end <= w[1].start, "grants overlap: {:?} / {:?}", w[0], w[1]);
        }
        prop_assert_eq!(r.total_busy().as_nanos(), total_service);
    }
}
