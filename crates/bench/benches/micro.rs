//! Criterion microbenches over the simulator's real data-structure work:
//! the attach fast path, the two guest-memory-map structures, PFN-list
//! construction, and page-table mapping. These measure *host* CPU time
//! of the structural work (not virtual time), guarding against
//! performance regressions in the simulator itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xemem::SystemBuilder;
use xemem_collections::{GuestMemoryMap, RadixMemoryMap, RbMemoryMap};
use xemem_mem::{PageTable, Pfn, PfnList, PteFlags, VirtAddr};

fn bench_attach_path(c: &mut Criterion) {
    let size: u64 = 16 << 20; // 4096 pages per attachment
    let mut sys = SystemBuilder::new()
        .linux_management("linux", 4, 64 << 20)
        .kitten_cokernel("kitten", 1, size + (64 << 20))
        .build()
        .unwrap();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let exporter = sys.spawn_process(kitten, size + (16 << 20)).unwrap();
    let attacher = sys.spawn_process(linux, 8 << 20).unwrap();
    let buf = sys.alloc_buffer(exporter, size).unwrap();
    let segid = sys.xpmem_make(exporter, buf, size, None).unwrap();
    let apid = sys.xpmem_get(attacher, segid).unwrap();

    let mut group = c.benchmark_group("attach_path");
    group.throughput(Throughput::Bytes(size));
    group.bench_function("native_16MiB_attach_detach", |b| {
        b.iter(|| {
            let va = sys.xpmem_attach(attacher, apid, 0, size).unwrap();
            sys.xpmem_detach(attacher, va).unwrap();
        })
    });
    group.finish();
}

fn bench_memory_maps(c: &mut Criterion) {
    let mut group = c.benchmark_group("guest_memory_map");
    for n in [1_000u64, 10_000] {
        group.bench_with_input(BenchmarkId::new("rb_insert_remove", n), &n, |b, &n| {
            b.iter(|| {
                let mut m = RbMemoryMap::new();
                for i in 0..n {
                    m.insert(i, 1, i).unwrap();
                }
                for i in 0..n {
                    m.remove(i).unwrap();
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("radix_insert_remove", n), &n, |b, &n| {
            b.iter(|| {
                let mut m = RadixMemoryMap::new();
                for i in 0..n {
                    m.insert(i, 1, i).unwrap();
                }
                for i in 0..n {
                    m.remove(i).unwrap();
                }
            })
        });
    }
    group.finish();
}

fn bench_pfn_list(c: &mut Criterion) {
    let mut group = c.benchmark_group("pfn_list");
    group.bench_function("build_contiguous_64k", |b| {
        b.iter(|| {
            let mut l = PfnList::new();
            l.push_run(Pfn(0), 65_536);
            l.wire_bytes()
        })
    });
    group.bench_function("build_scattered_64k", |b| {
        b.iter(|| {
            let l: PfnList = (0..65_536u64).map(|i| Pfn(i * 2)).collect();
            l.compressed_bytes()
        })
    });
    group.finish();
}

fn bench_page_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_table");
    group.bench_function("map_walk_unmap_4k_pages", |b| {
        b.iter(|| {
            let mut pt = PageTable::new();
            pt.map_pages(VirtAddr(0), (0..4096).map(Pfn), PteFlags::rw_user())
                .unwrap();
            let (list, _) = pt.walk_range(VirtAddr(0), 4096 * 4096).unwrap();
            pt.unmap_pages(VirtAddr(0), 4096).unwrap();
            list.pages()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_attach_path,
    bench_memory_maps,
    bench_pfn_list,
    bench_page_table
);
criterion_main!(benches);
