//! Wall-clock regression harness (host time, not virtual time).
//!
//! Every figure in this repo reports *virtual* nanoseconds from the
//! calibrated [`xemem_sim::CostModel`]; the host clock never appears in
//! a result table. But the simulator also does real structural work —
//! page-table installs, allocator bitmap updates, PFN-list handling —
//! and that work is what the extent fast path accelerates. This module
//! measures that host-side cost directly: attach, attach+read, and
//! crash-consistent teardown on one exported region, plus a fig6-style
//! contention sweep, all timed with [`std::time::Instant`].
//!
//! The companion binary (`cargo run --release -p xemem-bench --bin
//! wallclock`) writes `BENCH_wallclock.json` at the repo root with a
//! `baseline` section (recorded once, before the extent fast path) and
//! a `current` section (refreshed on demand), so the wall-clock
//! trajectory is tracked across PRs. CI runs the binary in `--check
//! --smoke` mode, which re-measures the reduced-size attach and fails
//! if it regresses more than [`CHECK_FACTOR`]× against the committed
//! numbers (with [`CHECK_FLOOR_NS`] of absolute headroom so slow CI
//! runners don't trip the gate spuriously).

use serde::Serialize;
use std::time::Instant;
use xemem::{SystemBuilder, TraceHandle, XememError};
use xemem_pool::{BufferPool, Holder};
use xemem_sim::CostModel;

/// Multiplier over the committed attach time above which `--check`
/// fails. Generous on purpose: it is meant to catch an accidental
/// return to per-page host work (a >50× slowdown at smoke size), not
/// scheduler jitter.
pub const CHECK_FACTOR: f64 = 2.0;

/// Absolute headroom for `--check`: measured attach times at or below
/// this never fail the gate, whatever the committed number says. Kept
/// far below the per-page baseline at smoke size (~milliseconds) so a
/// real regression still trips.
pub const CHECK_FLOOR_NS: f64 = 2_000_000.0;

/// Multiplier over the committed tracing-off attach time above which
/// `--check` fails the *tracing overhead* gate: the disabled-tracing
/// path must stay within 2% of its committed wall time (plus the same
/// [`CHECK_FLOOR_NS`] absolute headroom — at smoke size the attach is
/// far below the floor, so the gate catches an accidental allocation or
/// branch on the hot path, not scheduler noise).
pub const TRACE_CHECK_FACTOR: f64 = 1.02;

/// Worker count for the schema-3 parallel sweep column: the CI runner
/// class this gate targets has 4 cores.
pub const PARALLEL_JOBS: usize = 4;

/// Required fig6-sweep speedup at [`PARALLEL_JOBS`] workers vs serial
/// for `--check` to pass — enforced only on hosts with at least
/// [`PARALLEL_JOBS`] cores (the gate self-measures; on smaller hosts it
/// reports and skips, since the speedup physically cannot exist there).
pub const PARALLEL_SPEEDUP_FACTOR: f64 = 2.0;

/// Required intra-run (PDES lane) speedup at [`PARALLEL_JOBS`] workers
/// vs 1 worker on the [`crate::pdes_churn`] scenario — same
/// host-parallelism gating as the sweep gate (schema 4).
pub const INTRA_SPEEDUP_FACTOR: f64 = 2.0;

/// Rounds of the parallel-sweep grid: enough near-independent cells
/// (rounds × counts) that a 4-worker pool can balance the uneven
/// per-cell costs and the ideal speedup stays well above the gate.
pub const SWEEP_ROUNDS: usize = 4;

/// Enclave counts per sweep round (the fig6 x-axis).
pub const SWEEP_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// Region size per sweep cell.
pub const SWEEP_CELL_BYTES: u64 = 32 << 20;

/// Attachments per sweep cell — sized so one serial sweep takes on the
/// order of 100 ms: big enough that per-cell compute dwarfs thread
/// startup and scheduler jitter, small enough for every CI run.
pub const SWEEP_CELL_ITERS: u32 = 500;

/// Iterations per pool fast-path timing loop (schema 5) — enough that
/// per-op means are stable against scheduler jitter on the
/// nanosecond-scale pool bookkeeping.
pub const POOL_PAIRS: u32 = 50_000;

/// Slots in the wall-clock pool (recycled continuously by the loops).
pub const POOL_SLOTS: u32 = 64;

/// Segment size of the tier wall-clock loops (schema 6).
pub const TIER_BYTES: u64 = 64 << 20;

/// Iterations per tier wall-clock loop.
pub const TIER_ITERS: u32 = 20;

/// Region size used for the full-size profile (the paper's largest
/// Fig. 5/6 point).
pub const FULL_BYTES: u64 = 1 << 30;

/// Region size used for the smoke profile (CI and `--smoke`).
pub const SMOKE_BYTES: u64 = 64 << 20;

/// Wall-clock samples for one benchmark.
#[derive(Debug, Clone, Serialize)]
pub struct BenchStats {
    /// Timed iterations.
    pub iters: u32,
    /// Mean wall nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest iteration (used by the regression gate — robust against
    /// one-off scheduler noise).
    pub min_ns: f64,
}

impl BenchStats {
    fn from_samples(samples: &[u64]) -> BenchStats {
        let iters = samples.len() as u32;
        let total: u64 = samples.iter().sum();
        let min = samples.iter().copied().min().unwrap_or(0);
        BenchStats {
            iters,
            mean_ns: total as f64 / iters.max(1) as f64,
            min_ns: min as f64,
        }
    }
}

/// One measured profile (full-size or smoke).
#[derive(Debug, Clone, Serialize)]
pub struct Profile {
    /// Exported-region size in bytes for attach/attach+read/teardown.
    pub bytes: u64,
    /// Wall time of one `xpmem_attach` (eager PTE install) of `bytes`.
    pub attach: BenchStats,
    /// Attach plus reading the first MiB back out through the mapping.
    pub attach_read: BenchStats,
    /// Crash-consistent teardown: `crash_process` on the exporter with
    /// a live remote attachment (revocation, reap, quarantine return).
    pub teardown: BenchStats,
    /// Wall time of a fig6-style contention sweep (counts 1 and 2) at a
    /// quarter of `bytes`.
    pub fig6_sweep_ns: u64,
}

/// Measure attach and attach+read wall time for one region size.
pub fn measure_attach(size: u64, iters: u32) -> Result<(BenchStats, BenchStats), XememError> {
    measure_attach_with(size, iters, &TraceHandle::disabled())
}

/// [`measure_attach`] against an explicit tracer — used by the binary's
/// tracing-overhead section to time the same workload with tracing off
/// and on.
pub fn measure_attach_with(
    size: u64,
    iters: u32,
    tracer: &TraceHandle,
) -> Result<(BenchStats, BenchStats), XememError> {
    let mut sys = SystemBuilder::new()
        .with_tracer(tracer.clone())
        .with_cost(CostModel::default())
        .linux_management("linux", 4, 256 << 20)
        .kitten_cokernel("kitten", 1, size + (64 << 20))
        .build()?;
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let exporter = sys.spawn_process(kitten, size + (16 << 20))?;
    let attacher = sys.spawn_process(linux, 16 << 20)?;
    let buf = sys.alloc_buffer(exporter, size)?;
    sys.prepare_buffer(exporter, buf, size)?;
    let segid = sys.xpmem_make(exporter, buf, size, None)?;
    let apid = sys.xpmem_get(attacher, segid)?;

    // Warm up once so lazily materialized state (channels, name-server
    // caches) does not pollute the first sample.
    let va = sys.xpmem_attach(attacher, apid, 0, size)?;
    sys.xpmem_detach(attacher, va)?;

    let mut attach_samples = Vec::with_capacity(iters as usize);
    let mut read_samples = Vec::with_capacity(iters as usize);
    // Bound the host bytes actually copied: the virtual-time read cost
    // is charged per byte anyway; wall-wise the mapping walk dominates.
    let read_len = size.min(1 << 20) as usize;
    let mut out = vec![0u8; read_len];
    for _ in 0..iters {
        let t0 = Instant::now();
        let va = sys.xpmem_attach(attacher, apid, 0, size)?;
        let attach_ns = t0.elapsed().as_nanos() as u64;
        let t1 = Instant::now();
        sys.read(attacher, va, &mut out)?;
        let read_ns = t1.elapsed().as_nanos() as u64;
        attach_samples.push(attach_ns);
        read_samples.push(attach_ns + read_ns);
        sys.xpmem_detach(attacher, va)?;
    }
    Ok((
        BenchStats::from_samples(&attach_samples),
        BenchStats::from_samples(&read_samples),
    ))
}

/// Measure crash-consistent teardown wall time: each iteration builds a
/// fresh two-enclave system with a live cross-enclave attachment
/// (untimed), then times `crash_process` on the exporter — revocation,
/// remote reap, and quarantined-frame return all happen inside.
pub fn measure_teardown(size: u64, iters: u32) -> Result<BenchStats, XememError> {
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let mut sys = SystemBuilder::new()
            .with_cost(CostModel::default())
            .linux_management("linux", 4, 256 << 20)
            .kitten_cokernel("kitten", 1, size + (64 << 20))
            .build()?;
        let kitten = sys.enclave_by_name("kitten").unwrap();
        let linux = sys.enclave_by_name("linux").unwrap();
        let exporter = sys.spawn_process(kitten, size + (16 << 20))?;
        let attacher = sys.spawn_process(linux, 16 << 20)?;
        let buf = sys.alloc_buffer(exporter, size)?;
        sys.prepare_buffer(exporter, buf, size)?;
        let segid = sys.xpmem_make(exporter, buf, size, None)?;
        let apid = sys.xpmem_get(attacher, segid)?;
        let _va = sys.xpmem_attach(attacher, apid, 0, size)?;

        let t0 = Instant::now();
        sys.crash_process(exporter)?;
        samples.push(t0.elapsed().as_nanos() as u64);
        assert_eq!(sys.outstanding_loans(), 0, "teardown left loans");
    }
    Ok(BenchStats::from_samples(&samples))
}

/// Host wall time of the buffer-pool fast paths (schema 5): `pairs`
/// acquire+release pairs on the slot-recycling loop, then `pairs` full
/// acquire→publish→consume→release cycles through one consumer ring.
/// Returns `(acquire_release_total_ns, ring_total_ns)`. Virtual time is
/// chained through the ops (the pool never touches the host clock);
/// what the wall clock sees is the exporter-side bookkeeping the pool
/// actually executes — free-list pops, generation stamps, ring pushes —
/// which is exactly the work the `--check` gate guards.
pub fn measure_pool(pairs: u32) -> Result<(u64, u64), XememError> {
    let mut sys = SystemBuilder::new()
        .with_cost(CostModel::default())
        .linux_management("linux", 4, 256 << 20)
        .kitten_cokernel("kitten", 1, 64 << 20)
        .build()?;
    let linux = sys.enclave_by_name("linux").unwrap();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let producer = sys.spawn_process(linux, 64 << 20)?;
    let consumer = sys.spawn_process(kitten, 16 << 20)?;
    let t = sys.clock().now();
    let (mut pool, t) = BufferPool::create_at(&mut sys, producer, POOL_SLOTS, 4096, None, 8, t)
        .expect("wallclock pool export");
    let (cid, mut t) = pool
        .join_at(&mut sys, consumer, t)
        .expect("wallclock pool join");

    // Acquire/release pairs: the slot-recycling fast path.
    let t0 = Instant::now();
    for _ in 0..pairs {
        let (g, end) = pool.acquire_at(t).expect("acquire");
        t = pool.release_at(Holder::Exporter, g, end).expect("release");
    }
    let acquire_release_total_ns = t0.elapsed().as_nanos() as u64;

    // Full ring cycles: acquire, publish into the consumer's ring,
    // consume, release from the consumer side.
    let t0 = Instant::now();
    for _ in 0..pairs {
        let (g, end) = pool.acquire_at(t).expect("acquire");
        let end = pool.publish_at(cid, g, end).expect("publish");
        let (got, end) = pool.consume_at(cid, end).expect("consume");
        let g = got.expect("entry visible at publish completion");
        t = pool
            .release_at(Holder::Consumer(cid.0), g, end)
            .expect("release");
    }
    let ring_total_ns = t0.elapsed().as_nanos() as u64;
    pool.leak_check().expect("wallclock pool leak check");
    Ok((acquire_release_total_ns, ring_total_ns))
}

/// Host wall time of the tier structural paths (schema 6): a
/// cross-tier attach — the segment resident on the CXL expander, the
/// attacher on the Linux enclave — and a whole-segment
/// [`xemem::System::migrate_extent`] bounced between CXL and local
/// DRAM each iteration. Both paths are O(extents) in host time (the
/// physical store relocates by re-keying materialized frames, the
/// kernels rewrite extent runs); the `--check` gate catches a return
/// to per-page host work. Returns `(attach, migrate)` stats.
pub fn measure_tiers(size: u64, iters: u32) -> Result<(BenchStats, BenchStats), XememError> {
    use xemem::MemTier;
    let mut sys = SystemBuilder::new()
        .with_cost(CostModel::default())
        .linux_management("linux", 4, 256 << 20)
        .tier_reserve(MemTier::Cxl, size + (4 << 20))
        .kitten_cokernel("kitten", 1, size + (64 << 20))
        .build()?;
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let exporter = sys.spawn_process(kitten, size + (16 << 20))?;
    let attacher = sys.spawn_process(linux, 16 << 20)?;
    let buf = sys.alloc_buffer(exporter, size)?;
    sys.prepare_buffer(exporter, buf, size)?;
    let segid = sys.xpmem_make(exporter, buf, size, None)?;
    sys.migrate_extent(exporter, segid, MemTier::Cxl)?;
    let apid = sys.xpmem_get(attacher, segid)?;

    // Warm up one attach so lazily materialized protocol state does
    // not pollute the first sample.
    let va = sys.xpmem_attach(attacher, apid, 0, size)?;
    sys.xpmem_detach(attacher, va)?;

    let mut attach_samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        let va = sys.xpmem_attach(attacher, apid, 0, size)?;
        attach_samples.push(t0.elapsed().as_nanos() as u64);
        sys.xpmem_detach(attacher, va)?;
    }

    // Bounce the whole segment between DRAM and CXL, timing each
    // migration — with a live attachment so the re-point path (serve,
    // remap, causal edge) is inside the timed region.
    let _va = sys.xpmem_attach(attacher, apid, 0, size)?;
    let mut migrate_samples = Vec::with_capacity(iters as usize);
    for i in 0..iters {
        let dst = if i % 2 == 0 {
            MemTier::LocalDram
        } else {
            MemTier::Cxl
        };
        let t0 = Instant::now();
        sys.migrate_extent(exporter, segid, dst)?;
        migrate_samples.push(t0.elapsed().as_nanos() as u64);
    }
    Ok((
        BenchStats::from_samples(&attach_samples),
        BenchStats::from_samples(&migrate_samples),
    ))
}

/// The unit list of the parallel-sweep column: [`SWEEP_ROUNDS`] rounds
/// of the fig6 grid over [`SWEEP_COUNTS`] at [`SWEEP_CELL_BYTES`].
pub fn sweep_specs() -> Vec<(u32, u64)> {
    let mut specs = Vec::new();
    for _ in 0..SWEEP_ROUNDS {
        specs.extend(crate::fig6::grid(&SWEEP_COUNTS, &[SWEEP_CELL_BYTES]));
    }
    specs
}

/// Run the parallel-sweep workload at the given worker count and time
/// it on the host clock. Returns the wall nanoseconds and the cells in
/// unit order — the cells must be bit-identical at every worker count.
pub fn measure_sweep(jobs: usize) -> Result<(u64, Vec<crate::fig6::Fig6Cell>), XememError> {
    let specs = sweep_specs();
    let t0 = Instant::now();
    let cells = crate::driver::run_indexed(jobs, specs.len(), |i| {
        let (n, size) = specs[i];
        crate::fig6::run_cell_with(n, size, SWEEP_CELL_ITERS, &TraceHandle::disabled())
    })?;
    Ok((t0.elapsed().as_nanos() as u64, cells))
}

/// Run the intra-run lane-parallel churn scenario (one simulation,
/// [`crate::pdes_churn::CHURN_LANES`] event lanes) at the given worker
/// count and time it on the host clock. The outcome must be
/// bit-identical at every worker count.
pub fn measure_intra(workers: usize) -> Result<(u64, crate::pdes_churn::ChurnOutcome), XememError> {
    let t0 = Instant::now();
    let outcome = crate::pdes_churn::run_churn(workers)?;
    Ok((t0.elapsed().as_nanos() as u64, outcome))
}

/// Bitwise equality of two sweep results: every field compared exactly,
/// floats via `to_bits` — the determinism contract, not an epsilon.
pub fn cells_bitwise_equal(a: &[crate::fig6::Fig6Cell], b: &[crate::fig6::Fig6Cell]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.enclaves == y.enclaves
                && x.size == y.size
                && x.gbps.to_bits() == y.gbps.to_bits()
                && x.iterations == y.iterations
                && x.core0_wait == y.core0_wait
        })
}

/// Measure one full profile at the given attach size.
pub fn measure_profile(bytes: u64, iters: u32, teardown_iters: u32) -> Result<Profile, XememError> {
    let (attach, attach_read) = measure_attach(bytes, iters)?;
    let teardown = measure_teardown(bytes, teardown_iters)?;
    let sweep_size = (bytes / 4).max(4 << 20);
    let t0 = Instant::now();
    crate::fig6::run(&[1, 2], &[sweep_size], true)?;
    let fig6_sweep_ns = t0.elapsed().as_nanos() as u64;
    Ok(Profile {
        bytes,
        attach,
        attach_read,
        teardown,
        fig6_sweep_ns,
    })
}

// ----------------------------------------------------------------------
// Minimal JSON reader
// ----------------------------------------------------------------------
//
// The vendored serde_json shim only serializes; reading the committed
// BENCH_wallclock.json back (to preserve the baseline section and to
// drive the `--check` gate) needs a parser. This is a deliberately tiny
// recursive-descent reader for the subset of JSON this harness emits.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64 — the harness only stores counts and
    /// nanosecond measurements, both exactly representable).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Follow a path of object keys.
    pub fn path(&self, keys: &[&str]) -> Option<&Json> {
        let mut cur = self;
        for k in keys {
            cur = cur.get(k)?;
        }
        Some(cur)
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {pos}", ch as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        *pos += 4;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape '\\{}'", other as char)),
                }
            }
            _ => {
                // Copy one UTF-8 scalar verbatim.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut entries = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(entries));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        entries.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_subset() {
        let doc = r#"{"a": 1, "b": [1.5, true, null], "c": {"d": "x\ny"}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.path(&["a"]).unwrap().as_f64(), Some(1.0));
        assert_eq!(v.path(&["c", "d"]), Some(&Json::Str("x\ny".into())));
        match v.get("b") {
            Some(Json::Arr(items)) => {
                assert_eq!(items[0], Json::Num(1.5));
                assert_eq!(items[1], Json::Bool(true));
                assert_eq!(items[2], Json::Null);
            }
            other => panic!("bad array: {other:?}"),
        }
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
    }

    #[test]
    fn parses_own_emitted_report() {
        let stats = BenchStats {
            iters: 3,
            mean_ns: 1.5e6,
            min_ns: 1.0e6,
        };
        let text = serde_json::to_string_pretty(&stats).unwrap();
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.get("iters").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("min_ns").unwrap().as_f64(), Some(1.0e6));
    }

    #[test]
    fn smoke_measurements_run() {
        let (attach, attach_read) = measure_attach(4 << 20, 2).unwrap();
        assert_eq!(attach.iters, 2);
        assert!(attach.min_ns > 0.0);
        assert!(attach_read.mean_ns >= attach.mean_ns);
        let teardown = measure_teardown(4 << 20, 1).unwrap();
        assert!(teardown.min_ns > 0.0);
    }

    #[test]
    fn tier_measurements_run() {
        let (attach, migrate) = measure_tiers(8 << 20, 2).unwrap();
        assert_eq!(attach.iters, 2);
        assert!(attach.min_ns > 0.0);
        assert!(migrate.min_ns > 0.0);
    }

    #[test]
    fn pool_measurement_runs_and_leaks_nothing() {
        // measure_pool leak-checks internally; a small loop count keeps
        // the test fast while still exercising slot recycling (more
        // iterations than pool slots).
        let (ar_ns, ring_ns) = measure_pool(256).unwrap();
        assert!(ar_ns > 0);
        assert!(ring_ns > 0);
    }
}
