//! Fig. 6 — scalability of multi-OS/R shared memory.
//!
//! Paper setup: 1, 2, 4 or 8 Kitten co-kernel enclaves (one core and
//! 1.5 GB each), each exporting regions of 128 MB–1 GB, with one Linux
//! process per enclave attaching 1:1; at least 500 attachments per data
//! point. All kernel messages serialize on the core-0 IPI handler of the
//! management enclave, and concurrent Linux processes contend on shared
//! memory-map structures.
//!
//! Expected shape (paper): ~13 GB/s for one enclave, a slight dip moving
//! to 2 enclaves, then flat out to 8 — the centralized name server and
//! routing protocol do not bottleneck scaling.
//!
//! Concurrency is simulated with a worklist: every (exporter, attacher)
//! pair keeps its own timeline; the pair with the earliest next-event
//! time performs its next attachment, so channel contention windows
//! interleave in global time order.

use serde::Serialize;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use xemem::trace_layer::{Ctx, SpanKind, Timeline};
use xemem::{ProcessRef, System, SystemBuilder, TraceHandle, XememError};
use xemem_sim::pdes::{run_lanes, PdesActor, PdesConfig};
use xemem_sim::stats::throughput_gbps;
use xemem_sim::{CostModel, SimDuration, SimTime};

/// One (enclave count, size) cell of the figure.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Cell {
    /// Number of co-kernel enclaves.
    pub enclaves: u32,
    /// Region size in bytes.
    pub size: u64,
    /// Mean per-pair attach throughput, GB/s.
    pub gbps: f64,
    /// Attachments per pair.
    pub iterations: u32,
    /// Total queueing delay observed at the core-0 IPI handler.
    pub core0_wait: SimDuration,
}

struct Pair {
    exporter: ProcessRef,
    attacher: ProcessRef,
    apid: xemem::Apid,
    busy_time: SimDuration,
    remaining: u32,
}

/// Run one cell: `n` enclaves each serving `iters` attachments of
/// `size` bytes.
pub fn run_cell(n: u32, size: u64, iters: u32) -> Result<Fig6Cell, XememError> {
    run_cell_with(n, size, iters, &TraceHandle::disabled())
}

/// [`run_cell`] with an explicit tracer. The worklist drives the
/// timeline (`*_at`) API directly, so this variant frames each
/// attachment/detach on the detached timeline itself — including a
/// `MapContention` leaf for the memory-map contention surcharge the
/// worklist adds outside the [`System`] — and audits the cell: clock
/// roots must tile the setup phase and detached leaves must tile their
/// roots, exactly.
pub fn run_cell_with(
    n: u32,
    size: u64,
    iters: u32,
    tracer: &TraceHandle,
) -> Result<Fig6Cell, XememError> {
    run_cell_lanes(n, size, iters, 1, tracer)
}

/// Common setup: build the system and the exporter/attacher pairs.
fn build_cell(
    n: u32,
    size: u64,
    iters: u32,
    tracer: &TraceHandle,
) -> Result<(System, Vec<Pair>, CostModel), XememError> {
    let cost = CostModel::default();
    let mut b = SystemBuilder::new()
        .with_cost(cost.clone())
        .with_tracer(tracer.clone())
        .linux_management("linux", 8, (n as u64) * (32 << 20) + (64 << 20));
    for i in 0..n {
        b = b.kitten_cokernel(&format!("kitten{i}"), 1, size + (64 << 20));
    }
    let mut sys = b.build()?;
    let linux = sys.enclave_by_name("linux").unwrap();

    let mut pairs = Vec::new();
    for i in 0..n {
        let enclave = sys.enclave_by_name(&format!("kitten{i}")).unwrap();
        let exporter = sys.spawn_process(enclave, size + (16 << 20))?;
        let attacher = sys.spawn_process(linux, 8 << 20)?;
        let buf = sys.alloc_buffer(exporter, size)?;
        sys.prepare_buffer(exporter, buf, size)?;
        let segid = sys.xpmem_make(exporter, buf, size, None)?;
        let apid = sys.xpmem_get(attacher, segid)?;
        pairs.push(Pair {
            exporter,
            attacher,
            apid,
            busy_time: SimDuration::ZERO,
            remaining: iters,
        });
    }
    Ok((sys, pairs, cost))
}

/// One attach+detach iteration of a pair, starting at `at` on the
/// detached timeline; returns the pair's next event time. Shared
/// verbatim by the serial worklist and the PDES barrier phase — which is
/// what makes the two schedules byte-identical.
fn pair_iteration(
    sys: &mut System,
    pair: &mut Pair,
    size: u64,
    map_contention: f64,
    at: SimTime,
    tracer: &TraceHandle,
) -> Result<SimTime, XememError> {
    pair.remaining -= 1;
    let ctx = Ctx::proc(pair.attacher.enclave.0, pair.attacher.pid.0);
    tracer.begin_op(SpanKind::Attach, at, ctx, Timeline::Detached);
    let outcome = match sys.attach_at(pair.attacher, pair.apid, 0, size, at) {
        Ok(o) => o,
        Err(e) => {
            tracer.abort_op();
            return Err(e);
        }
    };
    let extra = outcome.map.scaled(map_contention);
    tracer.leaf(SpanKind::MapContention, outcome.end, extra, ctx);
    let attach_end = outcome.end + extra;
    tracer.commit_op(attach_end);
    pair.busy_time += attach_end.duration_since(at);
    tracer.begin_op(SpanKind::Detach, attach_end, ctx, Timeline::Detached);
    let free_at = match sys.detach_at(pair.attacher, outcome.va, attach_end) {
        Ok(t) => t,
        Err(e) => {
            tracer.abort_op();
            return Err(e);
        }
    };
    tracer.commit_op(free_at);
    let _ = pair.exporter;
    Ok(free_at)
}

/// One (exporter, attacher) pair as a PDES actor: its lane is its kitten
/// enclave's slot, its merge identity is the lane-count-independent pair
/// index, and every barrier event is one [`pair_iteration`].
struct PairActor {
    idx: usize,
    kitten_slot: u64,
    start: SimTime,
    pair: Pair,
    size: u64,
    map_contention: f64,
    tracer: TraceHandle,
    error: Option<XememError>,
}

impl PdesActor<System> for PairActor {
    fn lane_key(&self) -> u64 {
        self.kitten_slot
    }
    fn order_key(&self) -> u64 {
        self.idx as u64
    }
    fn first_event(&self) -> Option<SimTime> {
        Some(self.start)
    }
    fn barrier(&mut self, at: SimTime, sys: &mut System) -> Option<SimTime> {
        // `remaining == 0` mirrors the worklist's pop-and-skip of a
        // finished pair's final wakeup.
        if self.error.is_some() || self.pair.remaining == 0 {
            return None;
        }
        match pair_iteration(
            sys,
            &mut self.pair,
            self.size,
            self.map_contention,
            at,
            &self.tracer,
        ) {
            Ok(free_at) => Some(free_at),
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

/// [`run_cell_with`] on `lanes` PDES event lanes (`lanes = 1` is the
/// serial worklist, the reference implementation). Every lane count
/// replays the identical event schedule, so the returned cell — and the
/// tracer's spans — are byte-identical at any `--lanes`.
pub fn run_cell_lanes(
    n: u32,
    size: u64,
    iters: u32,
    lanes: usize,
    tracer: &TraceHandle,
) -> Result<Fig6Cell, XememError> {
    let scope = tracer.scope();
    let (mut sys, mut pairs, cost) = build_cell(n, size, iters, tracer)?;

    // The attachment phase starts after setup (the clock has advanced
    // past the make/get message traffic, which occupied the shared
    // channels).
    let t0 = sys.clock().now();
    // "Contention for Linux data structures that are accessed when
    // multiple processes concurrently update memory maps" (§5.3).
    let map_contention = if n >= 2 {
        cost.fwk_mmap_contention
    } else {
        0.0
    };

    if lanes <= 1 {
        // Serial worklist over pair timelines: the reference schedule.
        let mut heap: BinaryHeap<Reverse<(SimTime, usize)>> =
            (0..pairs.len()).map(|i| Reverse((t0, i))).collect();
        while let Some(Reverse((at, idx))) = heap.pop() {
            // Nothing books contended resources before the earliest
            // pending event, so completed bookings are retireable.
            sys.retire_resources_before(at);
            let pair = &mut pairs[idx];
            if pair.remaining == 0 {
                continue;
            }
            let free_at = pair_iteration(&mut sys, pair, size, map_contention, at, tracer)?;
            heap.push(Reverse((free_at, idx)));
        }
    } else {
        let lookahead = sys.pdes_lookahead();
        let mut actors: Vec<PairActor> = pairs
            .drain(..)
            .enumerate()
            .map(|(i, pair)| PairActor {
                idx: i,
                kitten_slot: (i + 1) as u64,
                start: t0,
                pair,
                size,
                map_contention,
                tracer: tracer.clone(),
                error: None,
            })
            .collect();
        let cfg = PdesConfig::new(lanes, lookahead);
        run_lanes(&cfg, &mut actors, &mut sys);
        if let Some(e) = actors.iter_mut().find_map(|a| a.error.take()) {
            return Err(e);
        }
        pairs = actors.into_iter().map(|a| a.pair).collect();
    }

    if tracer.is_enabled() {
        let elapsed = sys.clock().now().duration_since(SimTime::ZERO);
        tracer
            .audit_scope(&scope, Some(elapsed))
            .expect("fig6 conservation audit");
    }

    let per_pair: Vec<f64> = pairs
        .iter()
        .map(|p| throughput_gbps(size * iters as u64, p.busy_time))
        .collect();
    let mean = per_pair.iter().sum::<f64>() / per_pair.len() as f64;
    Ok(Fig6Cell {
        enclaves: n,
        size,
        gbps: mean,
        iterations: iters,
        core0_wait: sys.core0().total_wait(),
    })
}

/// Pick an iteration count that keeps total page-mapping work bounded
/// while staying statistically meaningful.
pub fn default_iters(n: u32, size: u64, smoke: bool) -> u32 {
    if smoke {
        return 4;
    }
    let pages = size / 4096;
    let budget_pages: u64 = 40_000_000;
    ((budget_pages / (pages * n as u64)).clamp(20, 500)) as u32
}

/// The sweep's cell list in output order (counts outer, sizes inner) —
/// the unit list the parallel run driver shards. Each `(n, size)` cell
/// is fully independent: it builds its own system and worklist.
pub fn grid(counts: &[u32], sizes: &[u64]) -> Vec<(u32, u64)> {
    counts
        .iter()
        .flat_map(|&n| sizes.iter().map(move |&size| (n, size)))
        .collect()
}

/// Run the full sweep.
pub fn run(counts: &[u32], sizes: &[u64], smoke: bool) -> Result<Vec<Fig6Cell>, XememError> {
    run_with(counts, sizes, smoke, &TraceHandle::disabled())
}

/// [`run`] with an explicit tracer (see [`run_cell_with`]).
pub fn run_with(
    counts: &[u32],
    sizes: &[u64],
    smoke: bool,
    tracer: &TraceHandle,
) -> Result<Vec<Fig6Cell>, XememError> {
    grid(counts, sizes)
        .into_iter()
        .map(|(n, size)| run_cell_with(n, size, default_iters(n, size, smoke), tracer))
        .collect()
}

/// Helper for tests: the system type is re-exported for white-box use.
pub type Sys = System;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dip_then_flat() {
        // Paper-scale regions: at tiny sizes fixed channel costs would
        // dominate and distort the shape.
        let size = 64 << 20;
        let one = run_cell(1, size, 8).unwrap();
        let two = run_cell(2, size, 8).unwrap();
        let four = run_cell(4, size, 8).unwrap();
        // Dip from 1 → 2 enclaves...
        assert!(two.gbps < one.gbps, "no dip: 1={} 2={}", one.gbps, two.gbps);
        // ...but no collapse beyond (within 5%).
        assert!(
            (four.gbps - two.gbps).abs() / two.gbps < 0.05,
            "2={} vs 4={}",
            two.gbps,
            four.gbps
        );
        // And core 0 actually saw queueing with multiple enclaves.
        assert!(four.core0_wait > SimDuration::ZERO);
    }

    #[test]
    fn lanes_replay_the_serial_schedule_bit_for_bit() {
        let size = 4 << 20;
        let reference = run_cell_with(4, size, 3, &TraceHandle::disabled()).unwrap();
        for lanes in [2usize, 5, 8] {
            let cell = run_cell_lanes(4, size, 3, lanes, &TraceHandle::disabled()).unwrap();
            assert_eq!(
                reference.gbps.to_bits(),
                cell.gbps.to_bits(),
                "lanes={lanes} throughput diverged"
            );
            assert_eq!(reference.core0_wait, cell.core0_wait, "lanes={lanes}");
            assert_eq!(reference.iterations, cell.iterations);
        }
    }
}
