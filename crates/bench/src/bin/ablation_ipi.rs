//! Ablation: core-0-restricted IPI handling (the paper's implementation)
//! vs per-channel interrupt handlers (its stated future work).

use xemem_bench::driver::ParSession;
use xemem_bench::{ablations::ipi, render_table, Args};

fn main() {
    let args = Args::parse();
    let mut session = ParSession::new(&args);
    let size = if args.smoke { 4 << 20 } else { 128 << 20 };
    let iters = args.runs.unwrap_or(if args.smoke { 4 } else { 100 });
    let rows = session
        .run(ipi::VARIANTS.len(), |v, tracer| {
            ipi::run_variant(v, size, iters, tracer)
        })
        .expect("ipi ablation");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.to_string(),
                format!("{:.2}", r.gbps),
                format!("{:.1}", r.core0_wait_us),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Ablation: IPI handler placement (8 enclaves, 1:1 attachments)",
            &["Variant", "GB/s per pair", "core-0 queueing (us)"],
            &table,
        )
    );
    if args.json {
        println!("{}", serde_json::to_string_pretty(&rows).unwrap());
    }
    session.finish(&args);
}
