//! Tiered-memory composed workload: static NVM placement vs the
//! hot/cold migration policy on a phase-shifting read schedule, the
//! migration-hysteresis ablation, and the attach-bandwidth-vs-tier
//! figure. Output is byte-identical at any `--jobs` and any `--lanes`.

use xemem_bench::driver::ParSession;
use xemem_bench::{render_table, tier_composed, Args};

fn main() {
    let args = Args::parse();
    // Always trace: migration spans, copy/remap leaves and causal
    // edges must pass the session epilogue's conservation audit.
    let mut session = ParSession::always_traced(&args);
    let (composed, bw) = tier_composed::run(&mut session, args.smoke, args.effective_lanes())
        .expect("tier composed sweep");

    let table: Vec<Vec<String>> = composed
        .iter()
        .map(|r| {
            vec![
                r.unit.to_string(),
                r.hysteresis.clone(),
                r.reads.to_string(),
                r.promotions.to_string(),
                r.demotions.to_string(),
                r.pages_moved.to_string(),
                r.workload_ns.to_string(),
                r.clock_ns.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Composed workload: hysteresis ablation (unit 0 = static NVM placement)",
            &[
                "Unit",
                "Hysteresis",
                "Reads",
                "Promotions",
                "Demotions",
                "PagesMoved",
                "WorkloadNs",
                "FinalClockNs"
            ],
            &table,
        )
    );
    let off = &composed[0];
    for r in &composed[1..] {
        println!(
            "speedup vs static (hysteresis {}): {:.2}x",
            r.hysteresis,
            off.workload_ns as f64 / r.workload_ns as f64
        );
    }

    let bw_table: Vec<Vec<String>> = bw
        .iter()
        .map(|r| {
            vec![
                r.tier.clone(),
                (r.bytes >> 20).to_string(),
                r.attach_ns.to_string(),
                r.read_ns.to_string(),
                format!("{:.3}", r.read_gbps),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Attach bandwidth vs resident tier (16 MiB segment, virtual time)",
            &["Tier", "MiB", "AttachNs", "ReadNs", "ReadGBps"],
            &bw_table,
        )
    );

    if args.json {
        println!("{}", serde_json::to_string_pretty(&composed).unwrap());
        println!("{}", serde_json::to_string_pretty(&bw).unwrap());
    }
    session.finish(&args);
}
