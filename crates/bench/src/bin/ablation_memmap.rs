//! Ablation: the VMM guest memory map — the paper's red-black tree vs
//! its proposed radix-tree future work, with and without run coalescing.

use xemem_bench::driver::ParSession;
use xemem_bench::{ablations::memmap, render_table, Args};

fn main() {
    let args = Args::parse();
    let mut session = ParSession::new(&args);
    let size = if args.smoke { 8 << 20 } else { 512 << 20 };
    let iters = args.runs.unwrap_or(if args.smoke { 3 } else { 25 });
    let rows = session
        .run(memmap::VARIANTS.len(), |v, tracer| {
            memmap::run_variant(v, size, iters, tracer)
        })
        .expect("memmap ablation");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.to_string(),
                format!("{:.2}", r.gbps),
                r.entries.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Ablation: VMM memory-map structure (guest attach path)",
            &["Variant", "GB/s", "map entries"],
            &table,
        )
    );
    if args.json {
        println!("{}", serde_json::to_string_pretty(&rows).unwrap());
    }
    session.finish(&args);
}
