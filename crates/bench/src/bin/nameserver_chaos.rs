//! Name-service chaos suite: 10,000 enclaves across 40 independent
//! node sessions, millions of operations, shard outages and replica
//! crashes injected mid-run. Asserts zero leaked frames and zero
//! post-revocation stale lease reads per unit; the session epilogue
//! conservation-audits every unit's tracer. Output is byte-identical
//! at any `--jobs`.

use xemem_bench::driver::ParSession;
use xemem_bench::{nameserver_chaos, render_table, Args};

fn main() {
    let args = Args::parse();
    // Always trace: the conservation audit is part of the suite's
    // contract, and per-run tracers keep `--jobs N` deterministic.
    let mut session = ParSession::always_traced(&args);
    let rows = nameserver_chaos::run(&mut session, args.smoke, args.effective_lanes())
        .expect("name-service chaos suite");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.unit.to_string(),
                r.enclaves.to_string(),
                r.ok_ops.to_string(),
                r.failed_ops.to_string(),
                r.failovers.to_string(),
                r.lost_registrations.to_string(),
                r.stale_reads.to_string(),
                r.clock_ns.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Name-service chaos suite (per independent node session)",
            &[
                "Unit",
                "Enclaves",
                "OkOps",
                "FailedOps",
                "Failovers",
                "LostRegs",
                "StaleReads",
                "FinalClockNs"
            ],
            &table,
        )
    );
    let enclaves: usize = rows.iter().map(|r| r.enclaves).sum();
    let ops: u64 = rows.iter().map(|r| r.ok_ops + r.failed_ops).sum();
    let failovers: u64 = rows.iter().map(|r| r.failovers).sum();
    let stale: u64 = rows.iter().map(|r| r.stale_reads).sum();
    println!(
        "totals: {} units, {enclaves} enclaves, {ops} ops, {failovers} failovers, {stale} stale reads",
        rows.len()
    );
    if args.json {
        println!("{}", serde_json::to_string_pretty(&rows).unwrap());
    }
    session.finish(&args);
}
