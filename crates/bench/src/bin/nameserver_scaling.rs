//! Scaling figure: lookup p50/p99 vs name-service shard count vs
//! shard-outage rate.

use xemem_bench::{nameserver_scaling, render_table, Args};

fn main() {
    let args = Args::parse();
    let cells = nameserver_scaling::run(args.effective_jobs(), args.smoke)
        .expect("name-service scaling figure");
    let table: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.shards.to_string(),
                c.outages.to_string(),
                c.lookups.to_string(),
                c.unavailable.to_string(),
                format!("{:.2}", c.p50_us),
                format!("{:.2}", c.p99_us),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Name-service scaling: lookup latency vs shards vs outage rate (virtual time)",
            &["Shards", "Outages", "Lookups", "Unavail", "p50 (us)", "p99 (us)"],
            &table,
        )
    );
    if args.json {
        println!("{}", serde_json::to_string_pretty(&cells).unwrap());
    }
}
