//! Ablation: name-server placement — management enclave vs co-kernel.

use xemem_bench::driver::ParSession;
use xemem_bench::{ablations::name_server, render_table, Args};

fn main() {
    let args = Args::parse();
    let mut session = ParSession::new(&args);
    let iters = args.runs.unwrap_or(if args.smoke { 5 } else { 200 });
    let rows = session
        .run(name_server::VARIANTS.len(), |v, tracer| {
            name_server::run_variant(v, iters, tracer)
        })
        .expect("name-server ablation");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.placement.to_string(),
                format!("{:.2}", r.make_us),
                format!("{:.2}", r.get_us),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Ablation: name-server placement (control-operation latency)",
            &[
                "Placement",
                "xpmem_make from kitten0 (us)",
                "xpmem_get from kitten1 (us)"
            ],
            &table,
        )
    );
    if args.json {
        println!("{}", serde_json::to_string_pretty(&rows).unwrap());
    }
    session.finish(&args);
}
