//! Ablation: NUMA placement — the paper pins every enclave to a single
//! socket (§5.1); this shows the cross-socket penalty that pinning
//! avoids.

use xemem_bench::driver::ParSession;
use xemem_bench::{ablations::numa, render_table, Args};

fn main() {
    let args = Args::parse();
    let mut session = ParSession::new(&args);
    let size = if args.smoke { 8 << 20 } else { 512 << 20 };
    let iters = args.runs.unwrap_or(if args.smoke { 3 } else { 50 });
    let rows = session
        .run(numa::VARIANTS.len(), |v, tracer| {
            numa::run_variant(v, size, iters, tracer)
        })
        .expect("numa ablation");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.placement.to_string(),
                format!("{:.2}", r.attach_gbps),
                format!("{:.2}", r.attach_read_gbps),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Ablation: NUMA placement of the exporting enclave",
            &["Placement", "Attach (GB/s)", "Attach+Read (GB/s)"],
            &table,
        )
    );
    if args.json {
        println!("{}", serde_json::to_string_pretty(&rows).unwrap());
    }
    session.finish(&args);
}
