//! Regenerates paper Fig. 6: cross-enclave throughput vs number of
//! concurrently executing co-kernel enclaves.

use xemem_bench::driver::ParSession;
use xemem_bench::{fig6, render_table, Args, SMOKE_SIZES, SWEEP_SIZES};

fn main() {
    let args = Args::parse();
    let sizes: Vec<u64> = if args.smoke {
        SMOKE_SIZES.to_vec()
    } else {
        SWEEP_SIZES.to_vec()
    };
    let counts = [1u32, 2, 4, 8];
    let grid = fig6::grid(&counts, &sizes);
    let mut session = ParSession::new(&args);
    let lanes = args.effective_lanes();
    let cells = session
        .run(grid.len(), |i, tracer| {
            let (n, size) = grid[i];
            fig6::run_cell_lanes(
                n,
                size,
                fig6::default_iters(n, size, args.smoke),
                lanes,
                tracer,
            )
        })
        .expect("fig6 experiment");
    // One row per enclave count, one column per size.
    let mut rows = Vec::new();
    for &n in &counts {
        let mut row = vec![n.to_string()];
        for &s in &sizes {
            let cell = cells
                .iter()
                .find(|c| c.enclaves == n && c.size == s)
                .unwrap();
            row.push(format!("{:.2}", cell.gbps));
        }
        rows.push(row);
    }
    let mut headers = vec!["Enclaves".to_string()];
    headers.extend(sizes.iter().map(|s| format!("{} MB (GB/s)", s >> 20)));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!(
        "{}",
        render_table(
            "Figure 6: throughput vs number of enclaves (paper: ~13 at 1, slight dip at 2, flat to 8)",
            &headers_ref,
            &rows,
        )
    );
    if args.json {
        println!("{}", serde_json::to_string_pretty(&cells).unwrap());
    }
    session.finish(&args);
}
