//! Regenerates paper Table 2: cross-enclave throughput with VM
//! enclaves, with and without red-black-tree insertion time.

use xemem_bench::driver::ParSession;
use xemem_bench::{render_table, table2, Args};

fn main() {
    let args = Args::parse();
    let size = if args.smoke { 16 << 20 } else { 1 << 30 };
    let iters = args.runs.unwrap_or(if args.smoke { 3 } else { 100 });
    let mut session = ParSession::new(&args);
    let rows = session
        .run(table2::ROWS, |r, tracer| {
            table2::run_row(r, size, iters, tracer)
        })
        .expect("table2 experiment");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.exporting.to_string(),
                r.attaching.to_string(),
                format!("{:.3}", r.gbps),
                r.gbps_without_rb
                    .map(|g| format!("{g:.2}"))
                    .unwrap_or_else(|| "(N/A)".into()),
                r.map_update_fraction
                    .map(|f| format!("{:.0}%", f * 100.0))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table 2: VM shared-memory throughput (paper: 12.841 / 3.991 (8.79) / 12.606 GB/s; ~80% map updates)",
            &["Exporting", "Attaching", "GB/s", "w/o rb-tree", "map-update share"],
            &table,
        )
    );
    if args.json {
        println!("{}", serde_json::to_string_pretty(&rows).unwrap());
    }
    session.finish(&args);
}
