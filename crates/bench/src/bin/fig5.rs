//! Regenerates paper Fig. 5: cross-enclave throughput using shared
//! memory and RDMA verbs over InfiniBand.

use xemem_bench::driver::ParSession;
use xemem_bench::{fig5, render_table, Args, SMOKE_SIZES, SWEEP_SIZES};

fn main() {
    let args = Args::parse();
    let sizes: Vec<u64> = if args.smoke {
        SMOKE_SIZES.to_vec()
    } else {
        SWEEP_SIZES.to_vec()
    };
    let iters = args.runs.unwrap_or(if args.smoke { 5 } else { 500 });
    let mut session = ParSession::new(&args);
    let rows = session
        .run(sizes.len(), |i, tracer| {
            fig5::run_size(sizes[i], iters, tracer)
        })
        .expect("fig5 experiment");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.size >> 20),
                format!("{:.2}", r.attach_gbps),
                format!("{:.2}", r.attach_read_gbps),
                format!("{:.2}", r.rdma_gbps),
                format!("{}", r.iterations),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 5: cross-enclave throughput, XEMEM vs RDMA Verbs/IB (paper: ~13 / ~12 / <3.5 GB/s)",
            &["Size (MB)", "Attach (GB/s)", "Attach+Read (GB/s)", "RDMA (GB/s)", "iters"],
            &table,
        )
    );
    if args.json {
        println!("{}", serde_json::to_string_pretty(&rows).unwrap());
    }
    session.finish(&args);
}
