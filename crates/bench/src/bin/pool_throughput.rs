//! Buffer-pool throughput sweep: acquire/release and ring ops per
//! virtual second vs consumer-enclave count, with a crash sweep
//! injected mid-run on every multi-consumer unit. Each unit asserts
//! exactly-once reclamation and a clean end-of-run leak check; the
//! session epilogue conservation-audits every unit's tracer. Output is
//! byte-identical at any `--jobs` and any `--lanes`.

use xemem_bench::driver::ParSession;
use xemem_bench::{pool_throughput, render_table, Args};

fn main() {
    let args = Args::parse();
    // Always trace: the conservation audit is part of the suite's
    // contract, and per-run tracers keep `--jobs N` deterministic.
    let mut session = ParSession::always_traced(&args);
    let rows = pool_throughput::run(&mut session, args.smoke, args.effective_lanes())
        .expect("pool throughput sweep");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.unit.to_string(),
                r.enclaves.to_string(),
                r.acquires.to_string(),
                r.releases.to_string(),
                r.published.to_string(),
                r.consumed.to_string(),
                r.swept.to_string(),
                r.failed_ops.to_string(),
                r.ring_peak.to_string(),
                r.ops_per_vms.to_string(),
                r.clock_ns.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Buffer-pool throughput (per consumer-enclave count)",
            &[
                "Unit",
                "Enclaves",
                "Acquires",
                "Releases",
                "Published",
                "Consumed",
                "Swept",
                "FailedOps",
                "RingPeak",
                "OpsPerVms",
                "FinalClockNs"
            ],
            &table,
        )
    );
    let ops: u64 = rows
        .iter()
        .map(|r| r.acquires + r.releases + r.published + r.consumed)
        .sum();
    let swept: u64 = rows.iter().map(|r| r.swept).sum();
    println!(
        "totals: {} units, {ops} pool ops, {swept} refs crash-swept",
        rows.len()
    );
    if args.json {
        println!("{}", serde_json::to_string_pretty(&rows).unwrap());
    }
    session.finish(&args);
}
