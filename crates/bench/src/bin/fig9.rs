//! Regenerates paper Fig. 9: multi-node in situ weak scaling,
//! Linux-only vs multi-enclave.

use xemem_bench::driver::ParSession;
use xemem_bench::{fig9, pm, render_table, Args};

fn main() {
    let args = Args::parse();
    let mut session = ParSession::new(&args);
    let runs = args.runs.unwrap_or(if args.smoke { 2 } else { 5 });
    let counts = [1u32, 2, 4, 8];
    let grid = fig9::grid(&counts);
    let points = session
        .run(grid.len(), |i, tracer| {
            fig9::run_point(grid[i], runs, args.smoke, tracer)
        })
        .expect("fig9 experiment");
    for attach in ["one-time", "recurring"] {
        let mut rows = Vec::new();
        for &n in &counts {
            let linux = fig9::find(&points, n, "Linux Only", attach);
            let multi = fig9::find(&points, n, "Multi Enclave", attach);
            rows.push(vec![
                n.to_string(),
                pm(linux.mean_secs, linux.stddev_secs),
                pm(multi.mean_secs, multi.stddev_secs),
            ]);
        }
        println!(
            "{}",
            render_table(
                &format!(
                    "Figure 9({}): weak scaling, {attach} attachments (paper: Linux-only rises 44->52s; multi-enclave flat ~46-47s)",
                    if attach == "one-time" { "a" } else { "b" }
                ),
                &["Nodes", "Linux Only (s)", "Multi Enclave (s)"],
                &rows,
            )
        );
    }
    if args.json {
        println!("{}", serde_json::to_string_pretty(&points).unwrap());
    }
    session.finish(&args);
}
