//! Regenerates paper Fig. 9: multi-node in situ weak scaling,
//! Linux-only vs multi-enclave.

use xemem_bench::driver::run_indexed;
use xemem_bench::{fig9, finish_tracing, init_tracing, pm, render_table, serial_if_tracing, Args};

fn main() {
    let args = Args::parse();
    let jobs = serial_if_tracing(&args);
    let tracer = init_tracing(&args);
    let runs = args.runs.unwrap_or(if args.smoke { 2 } else { 5 });
    let counts = [1u32, 2, 4, 8];
    let grid = fig9::grid(&counts);
    let points = run_indexed(jobs, grid.len(), |i| {
        fig9::run_point(grid[i], runs, args.smoke)
    })
    .expect("fig9 experiment");
    for attach in ["one-time", "recurring"] {
        let mut rows = Vec::new();
        for &n in &counts {
            let linux = fig9::find(&points, n, "Linux Only", attach);
            let multi = fig9::find(&points, n, "Multi Enclave", attach);
            rows.push(vec![
                n.to_string(),
                pm(linux.mean_secs, linux.stddev_secs),
                pm(multi.mean_secs, multi.stddev_secs),
            ]);
        }
        println!(
            "{}",
            render_table(
                &format!(
                    "Figure 9({}): weak scaling, {attach} attachments (paper: Linux-only rises 44->52s; multi-enclave flat ~46-47s)",
                    if attach == "one-time" { "a" } else { "b" }
                ),
                &["Nodes", "Linux Only (s)", "Multi Enclave (s)"],
                &rows,
            )
        );
    }
    if args.json {
        println!("{}", serde_json::to_string_pretty(&points).unwrap());
    }
    finish_tracing(&args, &tracer);
}
