//! Regenerates paper Fig. 8: single-node in situ benchmark across the
//! Table 3 enclave configurations.

use xemem_bench::driver::ParSession;
use xemem_bench::{fig8, pm, render_table, Args};

fn main() {
    let args = Args::parse();
    let mut session = ParSession::new(&args);
    let runs = args.runs.unwrap_or(if args.smoke { 2 } else { 10 });
    let grid = fig8::grid();
    let bars = session
        .run(grid.len(), |i, tracer| {
            fig8::run_bar(grid[i], runs, args.smoke, tracer)
        })
        .expect("fig8 experiment");
    for attach in ["one-time", "recurring"] {
        let rows: Vec<Vec<String>> = bars
            .iter()
            .filter(|b| b.attach == attach)
            .map(|b| {
                vec![
                    b.execution.to_string(),
                    b.config.to_string(),
                    pm(b.mean_secs, b.stddev_secs),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &format!(
                    "Figure 8({}): in situ completion time, {attach} attachments (paper range ~140-160s)",
                    if attach == "one-time" { "a" } else { "b" }
                ),
                &["Execution", "Configuration", "Time (s)"],
                &rows,
            )
        );
    }
    if args.json {
        println!("{}", serde_json::to_string_pretty(&bars).unwrap());
    }
    session.finish(&args);
}
