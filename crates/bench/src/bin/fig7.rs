//! Regenerates paper Fig. 7: noise profile of a Kitten enclave serving
//! XEMEM attachment requests on a single core.

use xemem_bench::driver::ParSession;
use xemem_bench::{fig7, render_table, Args};

fn main() {
    let args = Args::parse();
    let mut session = ParSession::new(&args);
    let (regions, window): (Vec<u64>, u64) = if args.smoke {
        (vec![4 << 10, 2 << 20, 64 << 20], 4)
    } else {
        (vec![4 << 10, 2 << 20, 1 << 30], 10)
    };
    let series = session
        .run(regions.len(), |i, tracer| {
            fig7::run_region(regions[i], window, 0xF17u64, tracer)
        })
        .expect("fig7 experiment");
    for s in &series {
        let mut by_kind: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
        for sample in &s.samples {
            by_kind
                .entry(kind_key(&sample.kind))
                .or_default()
                .push(sample.detour_us);
        }
        let rows: Vec<Vec<String>> = by_kind
            .iter()
            .map(|(k, v)| {
                let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = v.iter().cloned().fold(0.0, f64::max);
                let mean = v.iter().sum::<f64>() / v.len() as f64;
                vec![
                    k.to_string(),
                    v.len().to_string(),
                    format!("{min:.1}"),
                    format!("{mean:.1}"),
                    format!("{max:.1}"),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &format!(
                    "Figure 7: detours over {window}s, {} region (paper: hw ~12us, SMI ~100us, 1GB attach ~23,200-23,800us)",
                    human(s.region)
                ),
                &["kind", "count", "min (us)", "mean (us)", "max (us)"],
                &rows,
            )
        );
    }
    if args.json {
        println!("{}", serde_json::to_string_pretty(&series).unwrap());
    }
    session.finish(&args);
}

fn kind_key(k: &str) -> &'static str {
    match k {
        "Hardware" => "Hardware",
        "Smi" => "Smi",
        "AttachService" => "AttachService",
        "TimerTick" => "TimerTick",
        _ => "Daemon",
    }
}

fn human(bytes: u64) -> String {
    if bytes >= 1 << 30 {
        format!("{} GB", bytes >> 30)
    } else if bytes >= 1 << 20 {
        format!("{} MB", bytes >> 20)
    } else {
        format!("{} KB", bytes >> 10)
    }
}
