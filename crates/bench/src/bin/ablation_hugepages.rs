//! Ablation (extension beyond the paper): huge-page attachment mapping.
//! LWK-exported memory is physically contiguous, so the attaching FWK
//! can install 2 MiB leaves instead of per-page PTEs.

use xemem_bench::driver::ParSession;
use xemem_bench::{ablations::hugepages, render_table, Args};

fn main() {
    let args = Args::parse();
    let mut session = ParSession::new(&args);
    let size = if args.smoke { 16 << 20 } else { 512 << 20 };
    let iters = args.runs.unwrap_or(if args.smoke { 3 } else { 50 });
    let rows = session
        .run(hugepages::VARIANTS.len(), |v, tracer| {
            hugepages::run_variant(v, size, iters, tracer)
        })
        .expect("hugepage ablation");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.variant.to_string(), format!("{:.2}", r.gbps)])
        .collect();
    println!(
        "{}",
        render_table(
            "Ablation: attachment mapping granularity (Kitten export -> Linux attach)",
            &["Variant", "Attach (GB/s)"],
            &table,
        )
    );
    if args.json {
        println!("{}", serde_json::to_string_pretty(&rows).unwrap());
    }
    session.finish(&args);
}
