//! Wall-clock regression harness: times attach, attach+read, teardown,
//! and the fig6 sweep on the *host* clock and maintains
//! `BENCH_wallclock.json` at the repo root.
//!
//! Modes:
//!
//! * default — measure full (1 GiB) and smoke (64 MiB) profiles, write
//!   them as the `current` section, preserving any committed `baseline`
//!   section (if none exists, this run becomes the baseline too);
//! * `--baseline` — record this run as both `baseline` and `current`
//!   (run once, before a perf change, to pin the reference point);
//! * `--check` — CI gate: re-measure the smoke-size attach and fail if
//!   it regresses more than 2× (plus a generous absolute floor) against
//!   the committed smoke numbers; writes nothing;
//! * `--iters N` — override attach iterations.

use serde::Serialize;
use xemem::TraceHandle;
use xemem_bench::pdes_churn::{CHURN_ENCLAVES, CHURN_LANES};
use xemem_bench::wallclock::{
    cells_bitwise_equal, measure_attach, measure_attach_with, measure_intra, measure_pool,
    measure_profile, measure_sweep, measure_tiers, BenchStats, Json, Profile, CHECK_FACTOR,
    CHECK_FLOOR_NS, FULL_BYTES, INTRA_SPEEDUP_FACTOR, PARALLEL_JOBS, PARALLEL_SPEEDUP_FACTOR,
    POOL_PAIRS, POOL_SLOTS, SMOKE_BYTES, TIER_BYTES, TIER_ITERS, TRACE_CHECK_FACTOR,
};
use xemem_sim::host_parallelism;

const DEFAULT_OUT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wallclock.json");

#[derive(Debug, Clone, Serialize)]
struct Section {
    label: String,
    full: Profile,
    smoke: Profile,
}

/// Smoke-size attach wall time with the tracing layer disabled vs
/// enabled. The `off` column is what the `--check` overhead gate holds
/// to [`TRACE_CHECK_FACTOR`]: a disabled tracer must cost (within
/// noise) nothing.
#[derive(Debug, Clone, Serialize)]
struct TracingSection {
    bytes: u64,
    off: BenchStats,
    on: BenchStats,
    /// `on.mean_ns / off.mean_ns`.
    on_over_off: f64,
}

/// Schema-3 serial-vs-parallel sweep columns: the same fig6-style cell
/// grid timed at `--jobs 1` and `--jobs 4`. `cells_identical` records
/// the bitwise-determinism contract; `speedup` is honest for the host
/// the report was generated on (see `host_parallelism`).
#[derive(Debug, Clone, Serialize)]
struct ParallelSection {
    /// Cores the measuring host exposed (`available_parallelism`).
    host_parallelism: usize,
    /// Worker count of the parallel column.
    jobs: usize,
    /// Sweep cells executed per column.
    sweep_units: usize,
    /// Wall nanoseconds for the sweep at `--jobs 1`.
    serial_ns: u64,
    /// Wall nanoseconds for the sweep at `--jobs 4`.
    parallel_ns: u64,
    /// `serial_ns / parallel_ns`.
    speedup: f64,
    /// Whether both columns produced bit-identical cells.
    cells_identical: bool,
}

/// Schema-4 intra-run parallelism columns: one simulation (the
/// `pdes_churn` scenario, 8 event lanes) timed at 1 worker vs
/// [`PARALLEL_JOBS`] workers. `identical` records the bitwise
/// determinism contract (digest, virtual end time, window/event
/// counts); the speedup gate records an explicit skip on hosts with
/// fewer than [`PARALLEL_JOBS`] cores, where the speedup physically
/// cannot exist.
#[derive(Debug, Clone, Serialize)]
struct IntraRunSection {
    /// Cores the measuring host exposed (`available_parallelism`).
    host_parallelism: usize,
    /// PDES event lanes of the scenario (fixed; the worker count is the
    /// variable under test).
    lanes: usize,
    /// Worker threads of the parallel column.
    workers: usize,
    /// Actors (enclaves) in the scenario.
    actors: usize,
    /// Wall nanoseconds at 1 worker.
    serial_ns: u64,
    /// Wall nanoseconds at `workers` workers.
    parallel_ns: u64,
    /// `serial_ns / parallel_ns`.
    speedup: f64,
    /// Whether both runs produced bit-identical outcomes.
    identical: bool,
    /// Whether the >= [`INTRA_SPEEDUP_FACTOR`]x gate was skipped on
    /// this host.
    skipped: bool,
    /// Why (empty when the gate applied).
    skip_reason: String,
}

/// Schema-5 pool fast-path columns: host wall time of the buffer-pool
/// hot paths — slot acquire+release recycling and the full
/// acquire→publish→consume→release ring cycle — plus end-to-end
/// slots/sec through the ring. The `--check` gate holds both per-op
/// means to [`CHECK_FACTOR`]× their committed values, comparing
/// whole-loop wall time with the usual [`CHECK_FLOOR_NS`] absolute
/// floor so runner jitter on nanosecond-scale ops cannot trip it.
#[derive(Debug, Clone, Serialize)]
struct PoolSection {
    /// Cores the measuring host exposed (`available_parallelism`).
    host_parallelism: usize,
    /// Slots in the measured pool.
    slots: u32,
    /// Iterations per timed loop.
    pairs: u32,
    /// Mean host ns per acquire+release pair.
    acquire_release_ns: f64,
    /// Mean host ns per full ring cycle.
    ring_op_ns: f64,
    /// Slots through the ring per host second.
    slots_per_sec: f64,
}

/// Schema-6 memory-tier columns: host wall time of a cross-tier attach
/// (segment resident on the CXL expander) and a whole-segment
/// `migrate_extent` bounced between CXL and local DRAM with a live
/// attachment re-pointed inside the timed region. Both are O(extents)
/// structural paths; the `--check` gate holds each to [`CHECK_FACTOR`]×
/// its committed mean (with the usual absolute floor), catching any
/// return to per-page host work on the migration or tiered-attach
/// paths.
#[derive(Debug, Clone, Serialize)]
struct TiersSection {
    /// Cores the measuring host exposed (`available_parallelism`).
    host_parallelism: usize,
    /// Segment bytes of both loops.
    bytes: u64,
    /// Cross-tier attach wall time (segment on CXL).
    attach: BenchStats,
    /// Whole-segment migrate wall time (CXL ↔ DRAM bounce).
    migrate: BenchStats,
}

#[derive(Debug, Clone, Serialize)]
struct Report {
    schema: u32,
    note: String,
    /// Pre-change reference numbers; preserved verbatim on update runs.
    baseline: Section,
    /// Numbers for the tree as built.
    current: Section,
    /// `baseline.full.attach.mean_ns / current.full.attach.mean_ns`.
    attach_full_speedup_vs_baseline: f64,
    /// Tracing-off vs tracing-on smoke attach columns.
    tracing: TracingSection,
    /// Serial vs parallel fig6-sweep columns (schema 3).
    parallel: ParallelSection,
    /// Intra-run PDES lane-parallelism columns (schema 4).
    intra_run: IntraRunSection,
    /// Buffer-pool fast-path columns (schema 5).
    pool: PoolSection,
    /// Memory-tier structural-path columns (schema 6).
    tiers: TiersSection,
}

fn measure_tiers_section() -> TiersSection {
    let (attach, migrate) = measure_tiers(TIER_BYTES, TIER_ITERS).expect("tier timing");
    TiersSection {
        host_parallelism: host_parallelism(),
        bytes: TIER_BYTES,
        attach,
        migrate,
    }
}

fn measure_pool_section() -> PoolSection {
    let (ar_total, ring_total) = measure_pool(POOL_PAIRS).expect("pool timing");
    PoolSection {
        host_parallelism: host_parallelism(),
        slots: POOL_SLOTS,
        pairs: POOL_PAIRS,
        acquire_release_ns: ar_total as f64 / POOL_PAIRS as f64,
        ring_op_ns: ring_total as f64 / POOL_PAIRS as f64,
        slots_per_sec: POOL_PAIRS as f64 * 1e9 / ring_total as f64,
    }
}

fn measure_parallel_section() -> ParallelSection {
    let (serial_ns, serial_cells) = measure_sweep(1).expect("serial sweep");
    let (parallel_ns, parallel_cells) = measure_sweep(PARALLEL_JOBS).expect("parallel sweep");
    let identical = cells_bitwise_equal(&serial_cells, &parallel_cells);
    assert!(
        identical,
        "parallel sweep diverged from serial — determinism contract broken"
    );
    ParallelSection {
        host_parallelism: host_parallelism(),
        jobs: PARALLEL_JOBS,
        sweep_units: serial_cells.len(),
        serial_ns,
        parallel_ns,
        speedup: serial_ns as f64 / parallel_ns as f64,
        cells_identical: identical,
    }
}

fn measure_intra_section() -> IntraRunSection {
    let (serial_ns, serial) = measure_intra(1).expect("intra-run serial");
    let (parallel_ns, parallel) = measure_intra(PARALLEL_JOBS).expect("intra-run parallel");
    let identical = serial == parallel;
    assert!(
        identical,
        "intra-run churn diverged across worker counts — determinism contract broken"
    );
    let cores = host_parallelism();
    let skipped = cores < PARALLEL_JOBS;
    IntraRunSection {
        host_parallelism: cores,
        lanes: CHURN_LANES,
        workers: PARALLEL_JOBS,
        actors: CHURN_ENCLAVES,
        serial_ns,
        parallel_ns,
        speedup: serial_ns as f64 / parallel_ns as f64,
        identical,
        skipped,
        skip_reason: if skipped {
            format!("SKIPPED (host_parallelism={cores})")
        } else {
            String::new()
        },
    }
}

fn measure_tracing_section(iters: u32) -> TracingSection {
    let (off, _) =
        measure_attach_with(SMOKE_BYTES, iters, &TraceHandle::disabled()).expect("tracing-off");
    let tracer = TraceHandle::enabled();
    let (on, _) = measure_attach_with(SMOKE_BYTES, iters, &tracer).expect("tracing-on");
    tracer.audit().expect("wallclock tracing-on audit");
    TracingSection {
        bytes: SMOKE_BYTES,
        on_over_off: on.mean_ns / off.mean_ns,
        off,
        on,
    }
}

fn stats_from_json(v: &Json, what: &str) -> xemem_bench::wallclock::BenchStats {
    let f = |k: &str| {
        v.get(k)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("{what}.{k} missing in committed JSON"))
    };
    xemem_bench::wallclock::BenchStats {
        iters: f("iters") as u32,
        mean_ns: f("mean_ns"),
        min_ns: f("min_ns"),
    }
}

fn profile_from_json(v: &Json, what: &str) -> Profile {
    let get = |k: &str| {
        v.get(k)
            .unwrap_or_else(|| panic!("{what}.{k} missing in committed JSON"))
    };
    Profile {
        bytes: get("bytes").as_f64().expect("bytes") as u64,
        attach: stats_from_json(get("attach"), what),
        attach_read: stats_from_json(get("attach_read"), what),
        teardown: stats_from_json(get("teardown"), what),
        fig6_sweep_ns: get("fig6_sweep_ns").as_f64().expect("fig6_sweep_ns") as u64,
    }
}

fn section_from_json(v: &Json, what: &str) -> Section {
    Section {
        label: match v.get("label") {
            Some(Json::Str(s)) => s.clone(),
            _ => what.to_string(),
        },
        full: profile_from_json(v.get("full").expect("full profile"), what),
        smoke: profile_from_json(v.get("smoke").expect("smoke profile"), what),
    }
}

fn print_profile(name: &str, p: &Profile) {
    println!(
        "  {name}: {} MiB — attach {:.3} ms (min {:.3}), attach+read {:.3} ms, \
         teardown {:.3} ms, fig6 sweep {:.1} ms",
        p.bytes >> 20,
        p.attach.mean_ns / 1e6,
        p.attach.min_ns / 1e6,
        p.attach_read.mean_ns / 1e6,
        p.teardown.mean_ns / 1e6,
        p.fig6_sweep_ns as f64 / 1e6,
    );
}

fn run_check(out_path: &str, iters: u32) {
    let text = std::fs::read_to_string(out_path).unwrap_or_else(|e| {
        eprintln!("wallclock --check: cannot read {out_path}: {e}");
        std::process::exit(1);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("wallclock --check: cannot parse {out_path}: {e}");
        std::process::exit(1);
    });
    let committed = doc
        .path(&["current", "smoke", "attach", "mean_ns"])
        .and_then(Json::as_f64)
        .unwrap_or_else(|| {
            eprintln!("wallclock --check: current.smoke.attach.mean_ns missing in {out_path}");
            std::process::exit(1);
        });
    let (attach, _) = measure_attach(SMOKE_BYTES, iters).expect("smoke attach measurement");
    let limit = (committed * CHECK_FACTOR).max(CHECK_FLOOR_NS);
    println!(
        "wallclock --check: smoke attach min {:.3} ms (committed mean {:.3} ms, limit {:.3} ms)",
        attach.min_ns / 1e6,
        committed / 1e6,
        limit / 1e6
    );
    if attach.min_ns > limit {
        eprintln!("wallclock --check: FAIL — attach wall time regressed more than {CHECK_FACTOR}x");
        std::process::exit(1);
    }

    // Tracing-overhead gate: the disabled-tracing path (which is what
    // `measure_attach` just timed) must stay within TRACE_CHECK_FACTOR
    // of its committed tracing-off column.
    let committed_off = doc
        .path(&["tracing", "off", "mean_ns"])
        .and_then(Json::as_f64)
        .unwrap_or_else(|| {
            eprintln!("wallclock --check: tracing.off.mean_ns missing in {out_path}");
            std::process::exit(1);
        });
    let trace_limit = (committed_off * TRACE_CHECK_FACTOR).max(CHECK_FLOOR_NS);
    println!(
        "wallclock --check: tracing-off attach min {:.3} ms (committed {:.3} ms, limit {:.3} ms)",
        attach.min_ns / 1e6,
        committed_off / 1e6,
        trace_limit / 1e6
    );
    if attach.min_ns > trace_limit {
        eprintln!(
            "wallclock --check: FAIL — tracing-off attach exceeds committed by more than \
             {:.0}% (disabled tracing must be free)",
            (TRACE_CHECK_FACTOR - 1.0) * 100.0
        );
        std::process::exit(1);
    }

    // Serial-attach regression gate (schema 3): the serial attach path
    // must stay within 2% of the committed serial column (with the same
    // absolute floor), so the parallel driver cannot quietly tax the
    // `--jobs 1` path.
    let serial_limit = (committed * TRACE_CHECK_FACTOR).max(CHECK_FLOOR_NS);
    println!(
        "wallclock --check: serial attach min {:.3} ms (committed {:.3} ms, limit {:.3} ms)",
        attach.min_ns / 1e6,
        committed / 1e6,
        serial_limit / 1e6
    );
    if attach.min_ns > serial_limit {
        eprintln!(
            "wallclock --check: FAIL — serial attach regressed more than {:.0}% \
             (the run driver must not tax --jobs 1)",
            (TRACE_CHECK_FACTOR - 1.0) * 100.0
        );
        std::process::exit(1);
    }

    // Parallel-sweep gate (schema 3): re-run the sweep serially and at
    // PARALLEL_JOBS workers. Bitwise cell equality is enforced on every
    // host; the >=2x speedup is enforced only where it can physically
    // exist (hosts with at least PARALLEL_JOBS cores — the CI runner).
    let cores = host_parallelism();
    let (serial_ns, serial_cells) = measure_sweep(1).expect("serial sweep");
    let (parallel_ns, parallel_cells) = measure_sweep(PARALLEL_JOBS).expect("parallel sweep");
    if !cells_bitwise_equal(&serial_cells, &parallel_cells) {
        eprintln!(
            "wallclock --check: FAIL — fig6 sweep cells at --jobs {PARALLEL_JOBS} diverge \
             from --jobs 1 (determinism contract broken)"
        );
        std::process::exit(1);
    }
    let speedup = serial_ns as f64 / parallel_ns as f64;
    println!(
        "wallclock --check: fig6 sweep serial {:.1} ms, --jobs {PARALLEL_JOBS} {:.1} ms \
         ({speedup:.2}x, {cores} cores), cells bit-identical",
        serial_ns as f64 / 1e6,
        parallel_ns as f64 / 1e6,
    );
    if cores >= PARALLEL_JOBS {
        if speedup < PARALLEL_SPEEDUP_FACTOR {
            eprintln!(
                "wallclock --check: FAIL — fig6 sweep speedup {speedup:.2}x at \
                 --jobs {PARALLEL_JOBS} is below the required {PARALLEL_SPEEDUP_FACTOR}x"
            );
            std::process::exit(1);
        }
    } else {
        println!(
            "wallclock --check: SKIP speedup gate — host has {cores} core(s), \
             gate needs >= {PARALLEL_JOBS} (bitwise equality still enforced above)"
        );
    }

    // Intra-run PDES gate (schema 4): one simulation, 8 event lanes,
    // timed at 1 worker vs PARALLEL_JOBS workers. Bitwise identity of
    // the outcome (digest, virtual end time, window/event counts) is
    // enforced on every host; the >= INTRA_SPEEDUP_FACTOR speedup only
    // where it can physically exist.
    let (intra_serial_ns, intra_serial) = measure_intra(1).expect("intra-run serial");
    let (intra_parallel_ns, intra_parallel) =
        measure_intra(PARALLEL_JOBS).expect("intra-run parallel");
    if intra_serial != intra_parallel {
        eprintln!(
            "wallclock --check: FAIL — pdes_churn outcome at {PARALLEL_JOBS} workers diverges \
             from 1 worker (intra-run determinism contract broken)"
        );
        std::process::exit(1);
    }
    let intra_speedup = intra_serial_ns as f64 / intra_parallel_ns as f64;
    println!(
        "wallclock --check: pdes_churn ({CHURN_ENCLAVES} actors, {CHURN_LANES} lanes) \
         serial {:.1} ms, {PARALLEL_JOBS} workers {:.1} ms ({intra_speedup:.2}x, {cores} cores), \
         outcome bit-identical",
        intra_serial_ns as f64 / 1e6,
        intra_parallel_ns as f64 / 1e6,
    );
    if cores >= PARALLEL_JOBS {
        if intra_speedup < INTRA_SPEEDUP_FACTOR {
            eprintln!(
                "wallclock --check: FAIL — intra-run speedup {intra_speedup:.2}x at \
                 {PARALLEL_JOBS} workers is below the required {INTRA_SPEEDUP_FACTOR}x"
            );
            std::process::exit(1);
        }
    } else {
        println!(
            "wallclock --check: intra-run speedup gate SKIPPED (host_parallelism={cores}) — \
             gate needs >= {PARALLEL_JOBS} cores (bitwise identity still enforced above)"
        );
    }

    // Pool fast-path gate (schema 5): re-time the buffer-pool hot loops
    // and hold both per-op means to CHECK_FACTOR× the committed
    // columns. The comparison is on whole-loop wall time with the same
    // absolute floor, so scheduler jitter on nanosecond-scale ops
    // cannot trip the gate spuriously — only a real fast-path
    // regression (an allocation, a scan, a tracer call on the hot
    // path) can.
    let committed_pool = |k: &str| {
        doc.path(&["pool", k])
            .and_then(Json::as_f64)
            .unwrap_or_else(|| {
                eprintln!(
                    "wallclock --check: pool.{k} missing in {out_path} (regenerate schema 5)"
                );
                std::process::exit(1);
            })
    };
    let committed_ar = committed_pool("acquire_release_ns");
    let committed_ring = committed_pool("ring_op_ns");
    let (ar_total, ring_total) = measure_pool(POOL_PAIRS).expect("pool timing");
    for (name, total, committed_per_op) in [
        ("acquire+release", ar_total, committed_ar),
        ("ring cycle", ring_total, committed_ring),
    ] {
        let limit = (committed_per_op * POOL_PAIRS as f64 * CHECK_FACTOR).max(CHECK_FLOOR_NS);
        println!(
            "wallclock --check: pool {name} {:.1} ns/op over {POOL_PAIRS} iters \
             (committed {committed_per_op:.1} ns/op, loop limit {:.3} ms)",
            total as f64 / POOL_PAIRS as f64,
            limit / 1e6,
        );
        if total as f64 > limit {
            eprintln!(
                "wallclock --check: FAIL — pool {name} wall time regressed more than \
                 {CHECK_FACTOR}x against the committed column"
            );
            std::process::exit(1);
        }
    }
    println!(
        "wallclock --check: pool ring throughput {:.0} slots/sec",
        POOL_PAIRS as f64 * 1e9 / ring_total as f64
    );

    // Tier gate (schema 6): re-time the cross-tier attach and the
    // whole-segment migrate bounce and hold both minima to
    // CHECK_FACTOR× the committed means (same absolute floor). A
    // per-page loop reappearing on either path at 64 MiB (16384 pages)
    // blows far past both limits.
    let committed_tier = |k: &str| {
        doc.path(&["tiers", k, "mean_ns"])
            .and_then(Json::as_f64)
            .unwrap_or_else(|| {
                eprintln!(
                    "wallclock --check: tiers.{k}.mean_ns missing in {out_path} \
                     (regenerate schema 6)"
                );
                std::process::exit(1);
            })
    };
    let committed_tier_attach = committed_tier("attach");
    let committed_tier_migrate = committed_tier("migrate");
    let (tier_attach, tier_migrate) =
        measure_tiers(TIER_BYTES, iters.min(TIER_ITERS)).expect("tier timing");
    for (name, got, committed) in [
        ("cross-tier attach", &tier_attach, committed_tier_attach),
        ("migrate_extent", &tier_migrate, committed_tier_migrate),
    ] {
        let limit = (committed * CHECK_FACTOR).max(CHECK_FLOOR_NS);
        println!(
            "wallclock --check: tier {name} min {:.3} ms (committed mean {:.3} ms, \
             limit {:.3} ms)",
            got.min_ns / 1e6,
            committed / 1e6,
            limit / 1e6
        );
        if got.min_ns > limit {
            eprintln!(
                "wallclock --check: FAIL — tier {name} wall time regressed more than \
                 {CHECK_FACTOR}x against the committed column"
            );
            std::process::exit(1);
        }
    }
    println!("wallclock --check: OK");
}

fn main() {
    let mut baseline_mode = false;
    let mut check_mode = false;
    let mut iters: Option<u32> = None;
    let mut out_path = DEFAULT_OUT.to_string();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => baseline_mode = true,
            "--check" => check_mode = true,
            "--smoke" => {} // accepted for symmetry with other bins; --check is already smoke-size
            "--iters" => {
                iters = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--iters requires an integer"),
                );
            }
            "--out" => out_path = it.next().expect("--out requires a path"),
            other => panic!("unknown argument: {other} (expected --baseline, --check, --smoke, --iters N, --out PATH)"),
        }
    }

    if check_mode {
        run_check(&out_path, iters.unwrap_or(10));
        return;
    }

    println!(
        "wallclock: measuring full profile ({} MiB)...",
        FULL_BYTES >> 20
    );
    let full = measure_profile(FULL_BYTES, iters.unwrap_or(5), 3).expect("full profile");
    println!(
        "wallclock: measuring smoke profile ({} MiB)...",
        SMOKE_BYTES >> 20
    );
    let smoke = measure_profile(SMOKE_BYTES, iters.unwrap_or(20), 5).expect("smoke profile");
    let run = Section {
        label: if baseline_mode {
            "per-page mapping paths (pre extent fast path)".to_string()
        } else {
            "extent fast path".to_string()
        },
        full,
        smoke,
    };

    let baseline = if baseline_mode {
        run.clone()
    } else {
        match std::fs::read_to_string(&out_path)
            .ok()
            .and_then(|t| Json::parse(&t).ok())
        {
            Some(doc) if doc.get("baseline").is_some() => {
                section_from_json(doc.get("baseline").unwrap(), "baseline")
            }
            _ => {
                eprintln!("wallclock: no committed baseline found; recording this run as baseline");
                run.clone()
            }
        }
    };

    println!("wallclock: measuring tracing off/on smoke attach...");
    let tracing = measure_tracing_section(iters.unwrap_or(20));

    println!(
        "wallclock: measuring fig6 sweep at --jobs 1 and --jobs {PARALLEL_JOBS} \
         ({} cores available)...",
        host_parallelism()
    );
    let parallel = measure_parallel_section();

    println!(
        "wallclock: measuring pdes_churn at 1 and {PARALLEL_JOBS} workers \
         ({CHURN_LANES} lanes)..."
    );
    let intra_run = measure_intra_section();

    println!("wallclock: measuring pool fast paths ({POOL_PAIRS} iters per loop)...");
    let pool = measure_pool_section();

    println!(
        "wallclock: measuring tier paths ({} MiB, {TIER_ITERS} iters per loop)...",
        TIER_BYTES >> 20
    );
    let tiers = measure_tiers_section();

    let report = Report {
        schema: 6,
        note: "Host wall-clock times for the XEMEM simulator's structural work. \
               Virtual-time figures are unaffected by construction; see DESIGN.md \
               'Wall-clock vs virtual time'. The parallel, intra_run, pool and \
               tiers sections' numbers are honest for the host_parallelism they \
               record; intra_run records an explicit skip on hosts below the \
               gate's core count."
            .to_string(),
        attach_full_speedup_vs_baseline: baseline.full.attach.mean_ns / run.full.attach.mean_ns,
        baseline,
        current: run,
        tracing,
        parallel,
        intra_run,
        pool,
        tiers,
    };

    println!("baseline ({}):", report.baseline.label);
    print_profile("full", &report.baseline.full);
    print_profile("smoke", &report.baseline.smoke);
    println!("current ({}):", report.current.label);
    print_profile("full", &report.current.full);
    print_profile("smoke", &report.current.smoke);
    println!(
        "1 GiB attach speedup vs baseline: {:.1}x",
        report.attach_full_speedup_vs_baseline
    );
    println!(
        "tracing overhead at {} MiB: off {:.3} ms, on {:.3} ms ({:.2}x)",
        report.tracing.bytes >> 20,
        report.tracing.off.mean_ns / 1e6,
        report.tracing.on.mean_ns / 1e6,
        report.tracing.on_over_off
    );
    println!(
        "fig6 sweep ({} cells): serial {:.1} ms, --jobs {} {:.1} ms ({:.2}x on {} cores)",
        report.parallel.sweep_units,
        report.parallel.serial_ns as f64 / 1e6,
        report.parallel.jobs,
        report.parallel.parallel_ns as f64 / 1e6,
        report.parallel.speedup,
        report.parallel.host_parallelism
    );
    print!(
        "pdes_churn ({} actors, {} lanes): serial {:.1} ms, {} workers {:.1} ms ({:.2}x)",
        report.intra_run.actors,
        report.intra_run.lanes,
        report.intra_run.serial_ns as f64 / 1e6,
        report.intra_run.workers,
        report.intra_run.parallel_ns as f64 / 1e6,
        report.intra_run.speedup,
    );
    if report.intra_run.skipped {
        println!(" — speedup gate {}", report.intra_run.skip_reason);
    } else {
        println!();
    }
    println!(
        "pool fast paths ({} slots, {} iters): acquire+release {:.1} ns/op, \
         ring cycle {:.1} ns/op, {:.0} slots/sec",
        report.pool.slots,
        report.pool.pairs,
        report.pool.acquire_release_ns,
        report.pool.ring_op_ns,
        report.pool.slots_per_sec,
    );
    println!(
        "tier paths ({} MiB): cross-tier attach {:.3} ms (min {:.3}), \
         migrate_extent {:.3} ms (min {:.3})",
        report.tiers.bytes >> 20,
        report.tiers.attach.mean_ns / 1e6,
        report.tiers.attach.min_ns / 1e6,
        report.tiers.migrate.mean_ns / 1e6,
        report.tiers.migrate.min_ns / 1e6,
    );

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_wallclock.json");
    println!("wrote {out_path}");
}
