//! Tiered-memory composed workload — the payoff figure of the
//! heterogeneous memory tiers: a simulation enclave parks its exported
//! timestep segments on NVM (the capacity tier), an analytics enclave
//! reads them cross-enclave, and the hot/cold policy promotes the hot
//! working set to DRAM while demoting cooled segments back home.
//!
//! Three tables come out of one run:
//!
//! 1. **Composed workload** — the same read schedule under static NVM
//!    placement vs the armed migration policy, with the measured
//!    virtual-time speedup (the policy's win is bounded by the
//!    DRAM-vs-NVM stream-bandwidth gap and eroded by migration copy
//!    costs, so the number is honest, not structural).
//! 2. **Hysteresis ablation** — the identical workload at hysteresis
//!    1, 2 and 4 windows plus `off`, showing how trigger-happiness
//!    trades migration count against total virtual time.
//! 3. **Attach bandwidth vs tier** — one cross-enclave attach + full
//!    read of a segment resident in each configured tier, reporting
//!    the tier-surcharged attach latency and stream bandwidth.
//!
//! The workload runs on a PDES round grid under
//! [`xemem_sim::pdes::run_lanes`] with barrier-phase actors (the
//! producer ticks the migration policy, the analytics reader drives
//! clock-based reads), so the printed tables are byte-identical at any
//! `--jobs` and any `--lanes` — CI's `tier-chaos` job diffs exactly
//! that. Every unit's tracer flows into the session epilogue's
//! conservation audit, so migration spans, copy/remap leaves and
//! causal edges are covered like every other protocol path.

use serde::Serialize;
use xemem::{
    LanePart, MemTier, ProcessRef, Segid, SimDuration, System, SystemBuilder, TierPolicy,
    TraceHandle, VirtAddr, XememError,
};
use xemem_sim::pdes::{run_lanes, LaneShared, PdesActor, PdesConfig};
use xemem_sim::SimTime;

const MIB: u64 = 1 << 20;
const KIB: u64 = 1 << 10;

/// Exported segments per unit (two hot, the rest cold at any phase).
pub const SEGMENTS: usize = 6;
/// Bytes per exported segment — one policy chunk each.
pub const SEG_BYTES: u64 = 512 * KIB;
/// Policy chunk size in pages (512 KiB = one chunk per segment).
pub const CHUNK_PAGES: u64 = 128;
/// Reads of each hot segment per round.
pub const HOT_READS: usize = 4;
/// Access-counting window of the policy — sized to one round of the
/// read schedule at NVM stream speed, so a hot chunk's [`HOT_READS`]
/// clear the hot threshold even before promotion speeds rounds up.
pub const WINDOW_US: u64 = 2_000;
/// Barrier-grid stride — well above the conservative PDES lookahead.
const GRID_STRIDE_NS: u64 = 1_000_000;

/// Sweep geometry: composed-workload rounds (the hot set shifts at the
/// midpoint, so promotion and demotion both happen inside the run).
pub fn rounds(smoke: bool) -> u64 {
    if smoke {
        16
    } else {
        64
    }
}

/// The hysteresis axis of the ablation table: `None` = migration off
/// (static NVM placement), `Some(h)` = armed at `h` windows.
pub const HYSTERESIS_AXIS: [Option<u32>; 4] = [None, Some(1), Some(2), Some(4)];

/// One composed-workload outcome row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ComposedRow {
    /// Unit index.
    pub unit: usize,
    /// `"off"` or the hysteresis window count.
    pub hysteresis: String,
    /// Cross-enclave reads completed.
    pub reads: u64,
    /// Chunks promoted to DRAM.
    pub promotions: u64,
    /// Chunks demoted back to their NVM home.
    pub demotions: u64,
    /// Resident pages moved by all migrations.
    pub pages_moved: u64,
    /// Virtual nanoseconds from workload start to completion.
    pub workload_ns: u64,
    /// Final virtual clock.
    pub clock_ns: u64,
}

/// One attach-bandwidth-vs-tier row.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TierBwRow {
    /// The tier the segment was resident in at attach time.
    pub tier: String,
    /// Segment bytes.
    pub bytes: u64,
    /// Virtual nanoseconds of the cross-enclave attach (tier walk/map
    /// surcharges included).
    pub attach_ns: u64,
    /// Virtual nanoseconds of one full read through the attachment.
    pub read_ns: u64,
    /// Effective stream bandwidth of the read, GB/s (virtual).
    pub read_gbps: f64,
}

/// The policy used by every composed unit; `hysteresis` arms it.
pub fn policy(hysteresis: Option<u32>) -> TierPolicy {
    TierPolicy {
        window: SimDuration::from_micros(WINDOW_US),
        hot_threshold: 3,
        cold_threshold: 1,
        hysteresis: hysteresis.unwrap_or(u32::MAX),
        chunk_pages: CHUNK_PAGES,
        fast_tier: MemTier::LocalDram,
    }
}

/// Shared state the two actors coordinate through at barriers.
struct TierCtx {
    sys: System,
    exporter: ProcessRef,
    analytics: ProcessRef,
    segids: Vec<Segid>,
    vas: Vec<VirtAddr>,
    reads: u64,
    promotions: u64,
    demotions: u64,
    pages_moved: u64,
}

impl LaneShared for TierCtx {
    type Part<'a> = LanePart<'a>;

    fn lane_parts(&mut self, lanes: usize) -> Vec<LanePart<'_>> {
        self.sys.lane_parts(lanes)
    }

    fn on_window(&mut self, start: SimTime) {
        <System as LaneShared>::on_window(&mut self.sys, start);
    }
}

/// The two-phase hot set: segments 0–1 for the first half of the run,
/// then 2–3 — so the policy must both promote and demote mid-run.
fn hot_set(round: u64, rounds: u64) -> [usize; 2] {
    if round < rounds / 2 {
        [0, 1]
    } else {
        [2, 3]
    }
}

/// Producer (order 0, ticks the policy) and analytics reader (order 1)
/// on the round grid; all work happens in the barrier phase, so the op
/// sequence is identical at every lane and worker count.
struct Actor {
    order: u64,
    round: u64,
    rounds: u64,
}

impl PdesActor<TierCtx> for Actor {
    fn lane_key(&self) -> u64 {
        self.order
    }

    fn order_key(&self) -> u64 {
        self.order
    }

    fn first_event(&self) -> Option<SimTime> {
        Some(SimTime::ZERO)
    }

    fn has_local(&self) -> bool {
        false
    }

    fn local(&mut self, _now: SimTime, _part: &mut LanePart<'_>) {}

    fn barrier(&mut self, _now: SimTime, ctx: &mut TierCtx) -> Option<SimTime> {
        if self.order == 0 {
            // Producer: run one policy tick over its exports. Off-mode
            // ticks are no-ops but keep the op sequence symmetric.
            let moves = ctx.sys.tier_policy_tick(ctx.exporter).expect("policy tick");
            for m in moves {
                if m.to == MemTier::LocalDram {
                    ctx.promotions += 1;
                } else {
                    ctx.demotions += 1;
                }
                ctx.pages_moved += m.pages;
            }
        } else {
            // Analytics: hammer the hot set, probe one rotating cold
            // segment once.
            let mut buf = vec![0u8; SEG_BYTES as usize];
            for s in hot_set(self.round, self.rounds) {
                for _ in 0..HOT_READS {
                    ctx.sys
                        .read(ctx.analytics, ctx.vas[s], &mut buf)
                        .expect("hot read");
                    ctx.reads += 1;
                }
            }
            let probe = (self.round as usize) % SEGMENTS;
            ctx.sys
                .read(ctx.analytics, ctx.vas[probe], &mut buf)
                .expect("cold probe");
            ctx.reads += 1;
        }
        self.round += 1;
        // The grid exists to order barriers (its stride clears the PDES
        // lookahead); virtual time is carried by the system clock the
        // ops advance.
        (self.round < self.rounds).then(|| SimTime::from_nanos(self.round * GRID_STRIDE_NS))
    }
}

/// Run one composed unit: export [`SEGMENTS`] segments from the Kitten
/// enclave, park them on NVM, then drive the phase-shifting read
/// schedule with the policy armed at `hysteresis` (or off).
pub fn run_composed(
    unit: usize,
    hysteresis: Option<u32>,
    rounds: u64,
    lanes: usize,
    tracer: &TraceHandle,
) -> Result<ComposedRow, XememError> {
    // The exporter lives on the Linux enclave: its Fwk kernel maps
    // anonymous buffers with 4 KiB pages, so sub-2 MiB segments migrate
    // freely (Kitten's statically large-paged heap cannot split a
    // 512 KiB window out of a 2 MiB leaf).
    let mut sys = SystemBuilder::new()
        .with_tracer(tracer.clone())
        .with_tier_policy(policy(hysteresis))
        .tier_reserve(MemTier::Nvm, 32 * MIB)
        .linux_management("linux", 4, 256 * MIB)
        .kitten_cokernel("kitten", 1, 64 * MIB)
        .build()?;
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let exporter = sys.spawn_process(linux, 16 * MIB)?;
    let analytics = sys.spawn_process(kitten, 16 * MIB)?;

    let mut segids = Vec::with_capacity(SEGMENTS);
    let mut vas = Vec::with_capacity(SEGMENTS);
    for _ in 0..SEGMENTS {
        let buf = sys.alloc_buffer(exporter, SEG_BYTES)?;
        sys.prepare_buffer(exporter, buf, SEG_BYTES)?;
        let segid = sys.xpmem_make(exporter, buf, SEG_BYTES, None)?;
        // Capacity placement: every timestep starts on NVM, which also
        // re-homes the segment so cold chunks demote back there.
        sys.migrate_extent(exporter, segid, MemTier::Nvm)?;
        let apid = sys.xpmem_get(analytics, segid)?;
        let va = sys.xpmem_attach(analytics, apid, 0, SEG_BYTES)?;
        segids.push(segid);
        vas.push(va);
    }

    let t0 = sys.clock().now();
    let lookahead = sys.pdes_lookahead();
    let mut actors = vec![
        Actor {
            order: 0,
            round: 0,
            rounds,
        },
        Actor {
            order: 1,
            round: 0,
            rounds,
        },
    ];
    let mut ctx = TierCtx {
        sys,
        exporter,
        analytics,
        segids,
        vas,
        reads: 0,
        promotions: 0,
        demotions: 0,
        pages_moved: 0,
    };
    run_lanes(&PdesConfig::new(lanes, lookahead), &mut actors, &mut ctx);

    let clock = ctx.sys.clock().now();
    if hysteresis.is_none() {
        assert_eq!(
            ctx.promotions + ctx.demotions,
            0,
            "unit {unit}: static placement must not migrate"
        );
        for segid in &ctx.segids {
            assert_eq!(
                ctx.sys.tier_of_chunk(linux, *segid, 0),
                Some(MemTier::Nvm),
                "unit {unit}: static placement drifted off NVM"
            );
        }
    }
    Ok(ComposedRow {
        unit,
        hysteresis: hysteresis.map_or_else(|| "off".to_string(), |h| h.to_string()),
        reads: ctx.reads,
        promotions: ctx.promotions,
        demotions: ctx.demotions,
        pages_moved: ctx.pages_moved,
        workload_ns: clock.duration_since(t0).as_nanos(),
        clock_ns: clock.as_nanos(),
    })
}

/// Segment size of the attach-bandwidth figure.
pub const BW_BYTES: u64 = 16 * MIB;

/// Run one attach-bandwidth unit: park a segment in `tier`, then time
/// (in virtual nanoseconds) one cross-enclave attach and one full read.
pub fn run_tier_bw(tier: MemTier, tracer: &TraceHandle) -> Result<TierBwRow, XememError> {
    let mut b = SystemBuilder::new()
        .with_tracer(tracer.clone())
        .linux_management("linux", 4, 256 * MIB);
    if tier != MemTier::LocalDram {
        b = b.tier_reserve(tier, 64 * MIB);
    }
    let mut sys = b.kitten_cokernel("kitten", 1, 128 * MIB).build()?;
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let exporter = sys.spawn_process(kitten, 64 * MIB)?;
    let analytics = sys.spawn_process(linux, 16 * MIB)?;
    let buf = sys.alloc_buffer(exporter, BW_BYTES)?;
    sys.prepare_buffer(exporter, buf, BW_BYTES)?;
    let segid = sys.xpmem_make(exporter, buf, BW_BYTES, None)?;
    if tier != MemTier::LocalDram {
        sys.migrate_extent(exporter, segid, tier)?;
    }
    let apid = sys.xpmem_get(analytics, segid)?;

    let t0 = sys.clock().now();
    let va = sys.xpmem_attach(analytics, apid, 0, BW_BYTES)?;
    let t1 = sys.clock().now();
    let mut out = vec![0u8; BW_BYTES as usize];
    sys.read(analytics, va, &mut out)?;
    let t2 = sys.clock().now();

    let read_ns = t2.duration_since(t1).as_nanos();
    Ok(TierBwRow {
        tier: tier.to_string(),
        bytes: BW_BYTES,
        attach_ns: t1.duration_since(t0).as_nanos(),
        read_ns,
        read_gbps: BW_BYTES as f64 / read_ns as f64,
    })
}

/// All rows of the suite, run through a parallel session: the four
/// hysteresis units (index = position in [`HYSTERESIS_AXIS`]) followed
/// by one attach-bandwidth unit per tier.
pub fn run(
    session: &mut crate::driver::ParSession,
    smoke: bool,
    lanes: usize,
) -> Result<(Vec<ComposedRow>, Vec<TierBwRow>), XememError> {
    let r = rounds(smoke);
    let composed = session.run(HYSTERESIS_AXIS.len(), |i, tracer| {
        let _scope = tracer.scope();
        run_composed(i, HYSTERESIS_AXIS[i], r, lanes, tracer)
    })?;
    let bw = session.run(MemTier::ALL.len(), |i, tracer| {
        let _scope = tracer.scope();
        run_tier_bw(MemTier::ALL[i], tracer)
    })?;
    Ok((composed, bw))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The armed unit (hysteresis 2) at lanes {2, 8} reproduces the
    /// lanes=1 reference row bit for bit, migrates in both directions,
    /// and beats the static unit on virtual time.
    #[test]
    fn lanes_replay_and_migration_wins() {
        let r = rounds(true);
        let off = run_composed(0, None, r, 1, &TraceHandle::disabled()).unwrap();
        let armed = run_composed(2, Some(2), r, 1, &TraceHandle::disabled()).unwrap();
        assert!(armed.promotions > 0, "policy never promoted: {armed:?}");
        assert!(armed.demotions > 0, "policy never demoted: {armed:?}");
        assert!(
            armed.workload_ns < off.workload_ns,
            "migration lost to static placement: {armed:?} vs {off:?}"
        );
        for lanes in [2usize, 8] {
            let replay = run_composed(2, Some(2), r, lanes, &TraceHandle::disabled()).unwrap();
            assert_eq!(replay, armed, "lanes={lanes} diverged from the reference");
        }
    }

    /// Each non-DRAM tier attaches with a higher surcharge and streams
    /// slower than local DRAM.
    #[test]
    fn tier_bandwidth_orders_sanely() {
        let dram = run_tier_bw(MemTier::LocalDram, &TraceHandle::disabled()).unwrap();
        let nvm = run_tier_bw(MemTier::Nvm, &TraceHandle::disabled()).unwrap();
        assert!(nvm.attach_ns > dram.attach_ns);
        assert!(nvm.read_gbps < dram.read_gbps);
    }
}
