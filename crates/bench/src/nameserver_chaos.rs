//! Name-service chaos suite — the sharded service's acceptance
//! gauntlet.
//!
//! Forty independent node sessions of 250 enclaves each (10,000
//! enclaves total) drive millions of make/search/get/remove operations
//! through an 8-shard × 2-replica name service while a seeded schedule
//! injects shard-scoped outages and replica crashes (leader crashes
//! included) mid-run. Each unit asserts, in-run:
//!
//! * **zero leaked frames** — every surviving enclave ends at its
//!   pre-workload free-frame count, and no frame loan stays open;
//! * **zero post-revocation stale reads** — once a named segment's
//!   removal completes at virtual time T, no later lookup may return
//!   that segid (leases are revoked eagerly and epoch-fenced across
//!   failovers); every unit re-probes its removed names every round;
//! * **conservation** — units run under per-run tracers and the
//!   session epilogue audits every one: leaf spans must tile their
//!   roots exactly.
//!
//! Units are split-seeded from the root seed and the unit index, so
//! the printed table is byte-identical at `--jobs 1` and `--jobs N` —
//! CI's `nameserver-chaos` job diffs exactly that.

use serde::Serialize;
use xemem::{FaultPlan, ProcessRef, SystemBuilder, TraceHandle, XememError};
use xemem_sim::{SimDuration, SimRng, SimTime};

const MIB: u64 = 1 << 20;
/// Root seed for the suite.
pub const ROOT_SEED: u64 = 0xC4A0_55EED;
/// Name-service shards per unit.
pub const SHARDS: usize = 8;
/// Replicas per shard (the first is the leader).
pub const REPLICAS: usize = 2;

/// Virtual-time horizon the fault schedule is spread over.
const HORIZON_NS: u64 = 20_000_000; // 20 ms

/// One unit's outcome row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ChaosRow {
    /// Unit index.
    pub unit: usize,
    /// Enclaves in the unit (management + co-kernels).
    pub enclaves: usize,
    /// Operations that completed.
    pub ok_ops: u64,
    /// Operations that failed under injected faults (outage budgets,
    /// dead enclaves, lost registrations).
    pub failed_ops: u64,
    /// Leader failovers observed across the unit's shards.
    pub failovers: u64,
    /// Registrations lost to failovers (unreplicated at leader death).
    pub lost_registrations: u64,
    /// Lookups that returned a segid revoked before the lookup's
    /// virtual time (the suite asserts this is zero).
    pub stale_reads: u64,
    /// Final virtual clock, nanoseconds.
    pub clock_ns: u64,
}

/// Unit geometry: enclaves and workload rounds.
pub fn geometry(smoke: bool) -> (usize, usize, u64) {
    if smoke {
        // (units, kittens per unit, rounds)
        (4, 23, 10)
    } else {
        (40, 249, 100)
    }
}

/// Run one unit under an explicit tracer (spans, per-shard metrics and
/// the conservation audit all report into it; pass the disabled handle
/// to run dark). `seed` must already be split per unit.
pub fn run_unit(
    unit: usize,
    seed: u64,
    smoke: bool,
    tracer: &TraceHandle,
) -> Result<ChaosRow, XememError> {
    let (_, kittens, rounds) = geometry(smoke);
    let mut rng = SimRng::seed_from_u64(seed);

    // Fault schedule: shard-scoped outages plus replica crashes. Crash
    // targets stay off slot 0 (the topology root — killing it would
    // sever routing for the whole node, which is a different
    // experiment) and never take both replicas of one shard, so every
    // shard survives its failovers and the workload keeps running.
    let mut plan = FaultPlan::new();
    for _ in 0..12 {
        let at = SimTime::from_nanos(rng.uniform_u64(HORIZON_NS / 10, HORIZON_NS));
        let dur = SimDuration::from_nanos(rng.uniform_u64(20_000, 150_000));
        let shard = rng.uniform_u64(0, SHARDS as u64) as usize;
        plan = plan.name_server_shard_outage(at, shard, dur);
    }
    let mut crashed: Vec<usize> = Vec::new();
    while crashed.len() < 4 {
        let slot = rng.uniform_u64(1, (SHARDS * REPLICAS) as u64) as usize;
        let partner = (slot + SHARDS) % (SHARDS * REPLICAS);
        if crashed.contains(&slot) || crashed.contains(&partner) {
            continue;
        }
        let at = SimTime::from_nanos(rng.uniform_u64(HORIZON_NS / 10, HORIZON_NS));
        plan = plan.crash_enclave(at, slot);
        crashed.push(slot);
    }
    // Two workload-enclave crashes: their exports get revoked through
    // the crash-consistent protocol while consumers hold leases.
    for _ in 0..2 {
        let slot = rng.uniform_u64((SHARDS * REPLICAS) as u64, (kittens + 1) as u64) as usize;
        let at = SimTime::from_nanos(rng.uniform_u64(HORIZON_NS / 10, HORIZON_NS));
        plan = plan.crash_enclave(at, slot);
    }

    // A Kitten process image is text+data+stack (12 MiB) plus heap,
    // physically contiguous; worker enclaves host an exporter (2 MiB
    // heap for its export buffers) and a consumer.
    let mut b = SystemBuilder::new().linux_management("linux", 4, 128 * MIB);
    for i in 0..kittens {
        b = b.kitten_cokernel(&format!("k{i}"), 1, 36 * MIB);
    }
    let mut sys = b
        .name_service_shards(SHARDS, REPLICAS)
        .with_fault_plan(plan, seed)
        .with_tracer(tracer.clone())
        .build()?;

    let enclaves = kittens + 1;
    let baselines: Vec<Option<u64>> = (0..enclaves)
        .map(|i| {
            let e = xemem::EnclaveRef(i);
            sys.enclave_alive(e).then(|| sys.free_frames_of(e).unwrap())
        })
        .collect();

    let mut ok_ops = 0u64;
    let mut failed_ops = 0u64;
    let mut stale_reads = 0u64;
    macro_rules! attempt {
        ($r:expr) => {
            match $r {
                Ok(v) => {
                    ok_ops += 1;
                    Some(v)
                }
                Err(_) => {
                    failed_ops += 1;
                    None
                }
            }
        };
    }

    // 16 exporter/consumer pairs on slots past the replica set.
    let first_free = SHARDS * REPLICAS;
    let n_workers = 16.min(enclaves - first_free);
    let mut exporters: Vec<ProcessRef> = Vec::new();
    let mut consumers: Vec<ProcessRef> = Vec::new();
    for w in 0..n_workers {
        let enc = xemem::EnclaveRef(first_free + w);
        if let Some(p) = attempt!(sys.spawn_process(enc, 2 * MIB)) {
            exporters.push(p);
        }
        if let Some(p) = attempt!(sys.spawn_process(enc, MIB)) {
            consumers.push(p);
        }
    }

    // Initial exports: 4 named keys per exporter, hash-spread over
    // every shard.
    let mut gen = 0u64;
    let mut live: Vec<(ProcessRef, xemem::Segid, String)> = Vec::new();
    let mut removed: Vec<(String, xemem::Segid)> = Vec::new();
    for (w, &exporter) in exporters.iter().enumerate() {
        for _ in 0..4 {
            if let Some(buf) = attempt!(sys.alloc_buffer(exporter, 64 * 1024)) {
                let name = format!("c{unit}:{w}:{gen}");
                gen += 1;
                if let Some(segid) = attempt!(sys.xpmem_make(exporter, buf, 64 * 1024, Some(&name)))
                {
                    live.push((exporter, segid, name));
                }
            }
        }
    }

    for round in 0..rounds {
        // Lookup storm: every consumer searches a rotating window of
        // the live key space and takes grants on half of it.
        for (c, &consumer) in consumers.iter().enumerate() {
            for k in 0..16usize {
                if live.is_empty() {
                    break;
                }
                let (_, segid, name) = &live[(c * 16 + k + round as usize) % live.len()];
                let (segid, name) = (*segid, name.clone());
                if let Some(found) = attempt!(sys.xpmem_search(consumer, &name)) {
                    debug_assert_eq!(found, segid);
                }
                if k % 2 == 0 {
                    if let Some(apid) = attempt!(sys.xpmem_get(consumer, segid)) {
                        attempt!(sys.xpmem_release(consumer, apid));
                    }
                }
            }
            // Oracle probe: a removed name must never resolve to its
            // old segid again, whatever the schedule did to its shard.
            if let Some((gone_name, gone_segid)) = removed.get(c % removed.len().max(1)) {
                if let Some(found) = attempt!(sys.xpmem_search(consumer, gone_name)) {
                    if found == *gone_segid {
                        stale_reads += 1;
                    }
                }
            }
        }
        // Churn: withdraw two live keys (recording their removal for
        // the oracle) and export two fresh ones.
        for _ in 0..2 {
            if live.len() > 4 {
                let idx = (rng.uniform_u64(0, live.len() as u64)) as usize;
                let (owner, segid, name) = live.swap_remove(idx);
                if attempt!(sys.xpmem_remove(owner, segid)).is_some() {
                    removed.push((name, segid));
                }
            }
        }
        for _ in 0..2 {
            let w = rng.uniform_u64(0, exporters.len().max(1) as u64) as usize;
            if let Some(&exporter) = exporters.get(w) {
                if let Some(buf) = attempt!(sys.alloc_buffer(exporter, 64 * 1024)) {
                    let name = format!("c{unit}:{w}:{gen}");
                    gen += 1;
                    if let Some(segid) =
                        attempt!(sys.xpmem_make(exporter, buf, 64 * 1024, Some(&name)))
                    {
                        live.push((exporter, segid, name));
                    }
                }
            }
        }
        // March virtual time so the remaining schedule keeps landing
        // between rounds.
        let target = SimTime::from_nanos((round + 1) * HORIZON_NS / rounds);
        if sys.clock().now() < target {
            sys.clock().advance_to(target);
        }
    }

    // Graceful teardown, then the leak audit: every surviving enclave
    // must be back at its baseline and every crash loan drained.
    for p in exporters.iter().chain(consumers.iter()) {
        attempt!(sys.exit_process(*p));
    }
    for (i, base) in baselines.iter().enumerate() {
        let e = xemem::EnclaveRef(i);
        if let (Some(base), true) = (base, sys.enclave_alive(e)) {
            let now = sys.free_frames_of(e).unwrap();
            assert_eq!(
                now, *base,
                "unit {unit}: enclave {i} leaked or double-freed frames ({now} vs {base})"
            );
        }
    }
    assert_eq!(
        sys.outstanding_loans(),
        0,
        "unit {unit}: unsettled frame loans"
    );
    assert_eq!(stale_reads, 0, "unit {unit}: post-revocation stale reads");

    let ns = sys.name_service();
    let failovers = (0..ns.shard_count()).map(|s| ns.failover_count(s)).sum();
    // `ns:failover:shard{s}:lost{n}` marks n registrations dropped as
    // unreplicated when shard s's leader died.
    let lost_registrations: u64 = sys
        .events()
        .with_prefix("ns:failover:shard")
        .filter_map(|e| e.label.split(":lost").nth(1))
        .filter_map(|n| n.parse::<u64>().ok())
        .sum();

    Ok(ChaosRow {
        unit,
        enclaves,
        ok_ops,
        failed_ops,
        failovers,
        lost_registrations,
        stale_reads,
        clock_ns: sys.clock().now().as_nanos(),
    })
}

/// Run the whole suite through a parallel session whose per-run tracers
/// are conservation-audited by the caller's epilogue.
pub fn run(
    session: &mut crate::driver::ParSession,
    smoke: bool,
) -> Result<Vec<ChaosRow>, XememError> {
    let (units, _, _) = geometry(smoke);
    session.run(units, |i, tracer| {
        let _scope = tracer.scope();
        run_unit(i, xemem_sim::split_seed(ROOT_SEED, i as u64), smoke, tracer)
    })
}
