//! Name-service chaos suite — the sharded service's acceptance
//! gauntlet, driven by the windowed PDES engine.
//!
//! Forty independent node sessions of 250 enclaves each (10,000
//! enclaves total) drive millions of make/search/get/remove operations
//! through an 8-shard × 2-replica name service while a seeded schedule
//! injects shard-scoped outages and replica crashes (leader crashes
//! included) mid-run. The workload runs on a round grid under
//! [`xemem_sim::pdes::run_lanes`]: each consumer is a PDES actor whose
//! barrier event bundles one round of lookups, and whose lane phase
//! touches a scratch buffer on its own enclave — so `--lanes N` splits
//! the enclave-local work across event lanes while the schedule (and
//! every printed number) stays bit-identical to `--lanes 1`. Each unit
//! asserts, in-run:
//!
//! * **zero leaked frames** — every surviving enclave ends at its
//!   pre-workload free-frame count, and no frame loan stays open;
//! * **zero post-revocation stale reads** — once a named segment's
//!   removal completes at virtual time T, no lookup at or after T may
//!   return that segid (leases are revoked eagerly and epoch-fenced
//!   across failovers); every unit re-probes its removed names every
//!   round. Probes whose bundled virtual time lands before T read
//!   pre-removal history, which is legal under out-of-order chain
//!   execution and not counted;
//! * **conservation** — units run under per-run tracers and the
//!   session epilogue audits every one: leaf spans must tile their
//!   roots exactly.
//!
//! Units are split-seeded from the root seed and the unit index, so
//! the printed table is byte-identical at `--jobs 1` and `--jobs N`,
//! and at `--lanes 1` and `--lanes N` — CI's `nameserver-chaos` and
//! `pdes-determinism` jobs diff exactly that.

use serde::Serialize;
use xemem::trace_layer::{Ctx, SpanKind, Timeline};
use xemem::{
    FaultPlan, LanePart, ProcessRef, Segid, System, SystemBuilder, TraceHandle, VirtAddr,
    XememError,
};
use xemem_sim::pdes::{run_lanes, LaneShared, PdesActor, PdesConfig};
use xemem_sim::{SimDuration, SimRng, SimTime};

const MIB: u64 = 1 << 20;
/// Root seed for the suite.
pub const ROOT_SEED: u64 = 0xC4A0_55EED;
/// Name-service shards per unit.
pub const SHARDS: usize = 8;
/// Replicas per shard (the first is the leader).
pub const REPLICAS: usize = 2;

/// Virtual-time horizon the fault schedule is spread over.
const HORIZON_NS: u64 = 20_000_000; // 20 ms

/// One unit's outcome row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ChaosRow {
    /// Unit index.
    pub unit: usize,
    /// Enclaves in the unit (management + co-kernels).
    pub enclaves: usize,
    /// Operations that completed.
    pub ok_ops: u64,
    /// Operations that failed under injected faults (outage budgets,
    /// dead enclaves, lost registrations).
    pub failed_ops: u64,
    /// Leader failovers observed across the unit's shards.
    pub failovers: u64,
    /// Registrations lost to failovers (unreplicated at leader death).
    pub lost_registrations: u64,
    /// Lookups at or after a removal's completed virtual time that
    /// still returned the revoked segid (the suite asserts this is
    /// zero; earlier-timed lookups read pre-removal history legally).
    pub stale_reads: u64,
    /// Final virtual clock, nanoseconds.
    pub clock_ns: u64,
}

/// Unit geometry: enclaves and workload rounds.
pub fn geometry(smoke: bool) -> (usize, usize, u64) {
    if smoke {
        // (units, kittens per unit, rounds)
        (4, 23, 10)
    } else {
        (40, 249, 100)
    }
}

/// Shared state the chaos actors coordinate through at barriers: the
/// full [`System`] plus the live/removed key books and the outcome
/// tallies. The lane phase sees only per-enclave [`LanePart`]s.
struct ChaosCtx {
    sys: System,
    tracer: TraceHandle,
    live: Vec<(ProcessRef, Segid, String)>,
    /// Withdrawn names with the virtual time their revocation
    /// completed: the oracle counts a probe as stale only when the
    /// probe's virtual time is at or after that completion — a probe
    /// whose bundled time lands *before* the removal is a
    /// virtually-consistent read of history, not a staleness bug.
    removed: Vec<(String, Segid, SimTime)>,
    ok_ops: u64,
    failed_ops: u64,
    stale_reads: u64,
    /// Latest completion time booked by any op — where the clock jumps
    /// to before teardown.
    max_end: SimTime,
}

impl ChaosCtx {
    /// Frame one cross-enclave op on the detached timeline and tally
    /// its outcome, mirroring what the clock-based `framed` wrappers do
    /// for the serial reference workloads.
    fn framed_at<T>(
        &mut self,
        kind: SpanKind,
        ctx: Ctx,
        at: SimTime,
        f: impl FnOnce(&mut System, SimTime) -> Result<(T, SimTime), XememError>,
    ) -> Option<(T, SimTime)> {
        self.tracer.begin_op(kind, at, ctx, Timeline::Detached);
        match f(&mut self.sys, at) {
            Ok((v, end)) => {
                self.tracer.commit_op(end);
                self.ok_ops += 1;
                self.max_end = self.max_end.max(end);
                Some((v, end))
            }
            Err(_) => {
                self.tracer.abort_op();
                self.failed_ops += 1;
                None
            }
        }
    }

    /// [`System::alloc_buffer_at`] (which frames itself), tallied.
    fn alloc_at(&mut self, p: ProcessRef, len: u64, at: SimTime) -> Option<(VirtAddr, SimTime)> {
        match self.sys.alloc_buffer_at(p, len, at) {
            Ok((va, end)) => {
                self.ok_ops += 1;
                self.max_end = self.max_end.max(end);
                Some((va, end))
            }
            Err(_) => {
                self.failed_ops += 1;
                None
            }
        }
    }
}

impl LaneShared for ChaosCtx {
    type Part<'a> = LanePart<'a>;

    fn lane_parts(&mut self, lanes: usize) -> Vec<LanePart<'_>> {
        self.sys.lane_parts(lanes)
    }

    fn on_window(&mut self, start: SimTime) {
        <System as LaneShared>::on_window(&mut self.sys, start);
    }

    fn on_barrier_resume(&mut self, barrier: SimTime, resume: SimTime) {
        <System as LaneShared>::on_barrier_resume(&mut self.sys, barrier, resume);
    }
}

/// The round grid every actor's barrier events land on: `T_r = t0 +
/// r·stride`, with the stride (20 ms / rounds) far above the PDES
/// lookahead so bundled rounds always respect the window contract.
#[derive(Clone, Copy)]
struct Grid {
    t0_ns: u64,
    stride_ns: u64,
    rounds: u64,
}

impl Grid {
    fn at(&self, round: u64) -> SimTime {
        SimTime::from_nanos(self.t0_ns + round * self.stride_ns)
    }

    fn next(&self, round: u64) -> Option<SimTime> {
        (round < self.rounds).then(|| self.at(round))
    }
}

/// One consumer: its barrier event bundles a round of the lookup storm
/// (16 searches over a rotating window of the live key space, grants on
/// half, plus the removed-name oracle probe); its lane phase touches a
/// scratch buffer on its own enclave so `--lanes`/workers have real
/// enclave-local work to parallelize.
struct Consumer {
    c: usize,
    p: ProcessRef,
    scratch: Option<VirtAddr>,
    round: u64,
    grid: Grid,
    /// Lane-phase tallies, folded into the shared counters at the next
    /// barrier (the lane phase cannot touch shared state).
    local_ok: u64,
    local_failed: u64,
    local_max_end: SimTime,
}

impl Consumer {
    fn local_touch(&mut self, now: SimTime, part: &mut LanePart<'_>) {
        let Some(va) = self.scratch else { return };
        debug_assert!(part.owns(self.p.enclave));
        let pattern = [(self.round as u8) ^ 0x5A; 64];
        match part.write_at(self.p, va, &pattern, now) {
            Ok(end) => {
                self.local_ok += 1;
                let mut back = [0u8; 64];
                match part.read_at(self.p, va, &mut back, end) {
                    Ok(end) => {
                        debug_assert_eq!(back, pattern, "lane-local readback mismatch");
                        self.local_ok += 1;
                        self.local_max_end = self.local_max_end.max(end);
                    }
                    Err(_) => self.local_failed += 1,
                }
            }
            Err(_) => self.local_failed += 1,
        }
    }

    fn round_barrier(&mut self, at: SimTime, ctx: &mut ChaosCtx) -> Option<SimTime> {
        // Fold the lane-phase tallies in first, so the shared counters
        // stay a pure function of the (deterministic) event schedule.
        ctx.ok_ops += std::mem::take(&mut self.local_ok);
        ctx.failed_ops += std::mem::take(&mut self.local_failed);
        ctx.max_end = ctx.max_end.max(self.local_max_end);
        let p = self.p;
        let pctx = Ctx::proc(p.enclave.0, p.pid.0);
        let mut t = at;
        // Lookup storm: search a rotating window of the live key space
        // and take grants on half of it.
        for k in 0..16usize {
            if ctx.live.is_empty() {
                break;
            }
            let (_, segid, name) =
                &ctx.live[(self.c * 16 + k + self.round as usize) % ctx.live.len()];
            let (segid, name) = (*segid, name.clone());
            if let Some((found, end)) = ctx.framed_at(SpanKind::Search, pctx, t, |sys, at| {
                sys.search_at(p, &name, at)
            }) {
                debug_assert_eq!(found, segid);
                t = end;
            }
            if k % 2 == 0 {
                let sctx = Ctx::seg(p.enclave.0, p.pid.0, segid.0);
                if let Some((apid, end)) =
                    ctx.framed_at(SpanKind::Get, sctx, t, |sys, at| sys.get_at(p, segid, at))
                {
                    t = end;
                    if let Some(((), end)) = ctx.framed_at(SpanKind::Release, pctx, t, |sys, at| {
                        sys.release_at(p, apid, at).map(|e| ((), e))
                    }) {
                        t = end;
                    }
                }
            }
        }
        // Oracle probe: once a name's revocation has completed at
        // virtual time T, no lookup at or after T may resolve it to the
        // old segid, whatever the schedule did to its shard. (A probe
        // whose time lands before T reads pre-removal history — legal.)
        if let Some((gone_name, gone_segid, gone_at)) =
            ctx.removed.get(self.c % ctx.removed.len().max(1)).cloned()
        {
            let probe_at = t;
            if let Some((found, _)) = ctx.framed_at(SpanKind::Search, pctx, t, |sys, at| {
                sys.search_at(p, &gone_name, at)
            }) {
                if found == gone_segid && probe_at >= gone_at {
                    ctx.stale_reads += 1;
                }
            }
        }
        self.round += 1;
        self.grid.next(self.round)
    }
}

/// The churn driver: one actor, ordered after every consumer at each
/// grid time, owning the unit's RNG — it withdraws two live keys
/// (recording their removal for the oracle) and exports two fresh ones
/// per round, exactly like the serial suite did.
struct Churn {
    rng: SimRng,
    exporters: Vec<ProcessRef>,
    unit: usize,
    gen: u64,
    order: u64,
    round: u64,
    grid: Grid,
}

impl Churn {
    fn round_barrier(&mut self, at: SimTime, ctx: &mut ChaosCtx) -> Option<SimTime> {
        let mut t = at;
        for _ in 0..2 {
            if ctx.live.len() > 4 {
                let idx = self.rng.uniform_u64(0, ctx.live.len() as u64) as usize;
                let (owner, segid, name) = ctx.live.swap_remove(idx);
                let sctx = Ctx::seg(owner.enclave.0, owner.pid.0, segid.0);
                if let Some(((), end)) = ctx.framed_at(SpanKind::Remove, sctx, t, |sys, at| {
                    sys.remove_at(owner, segid, at).map(|e| ((), e))
                }) {
                    t = end;
                    ctx.removed.push((name, segid, end));
                }
            }
        }
        for _ in 0..2 {
            let w = self.rng.uniform_u64(0, self.exporters.len().max(1) as u64) as usize;
            if let Some(&exporter) = self.exporters.get(w) {
                if let Some((buf, end)) = ctx.alloc_at(exporter, 64 * 1024, t) {
                    t = end;
                    let name = format!("c{}:{w}:{}", self.unit, self.gen);
                    self.gen += 1;
                    let pctx = Ctx::proc(exporter.enclave.0, exporter.pid.0);
                    if let Some((segid, end)) = ctx.framed_at(SpanKind::Make, pctx, t, |sys, at| {
                        sys.make_at(exporter, buf, 64 * 1024, Some(&name), at)
                    }) {
                        t = end;
                        ctx.live.push((exporter, segid, name));
                    }
                }
            }
        }
        self.round += 1;
        self.grid.next(self.round)
    }
}

/// The unit's actor set, merged at barriers by `(time, order_key)` —
/// consumers in index order, then churn — matching the serial suite's
/// per-round op order at any lane/worker count.
enum ChaosActor {
    Consumer(Consumer),
    Churn(Churn),
}

impl PdesActor<ChaosCtx> for ChaosActor {
    fn lane_key(&self) -> u64 {
        match self {
            // A consumer's lane is its enclave's — the same hash
            // `System::lane_parts` partitions slots by, so its lane
            // phase always finds its own slot in its partition.
            ChaosActor::Consumer(c) => c.p.enclave.0 as u64,
            ChaosActor::Churn(_) => 0,
        }
    }

    fn order_key(&self) -> u64 {
        match self {
            ChaosActor::Consumer(c) => c.c as u64,
            ChaosActor::Churn(ch) => ch.order,
        }
    }

    fn first_event(&self) -> Option<SimTime> {
        match self {
            ChaosActor::Consumer(c) => c.grid.next(0).filter(|_| c.round == 0),
            ChaosActor::Churn(ch) => ch.grid.next(0).filter(|_| ch.round == 0),
        }
    }

    fn has_local(&self) -> bool {
        matches!(self, ChaosActor::Consumer(c) if c.scratch.is_some())
    }

    fn local(&mut self, now: SimTime, part: &mut LanePart<'_>) {
        if let ChaosActor::Consumer(c) = self {
            c.local_touch(now, part);
        }
    }

    fn barrier(&mut self, now: SimTime, shared: &mut ChaosCtx) -> Option<SimTime> {
        match self {
            ChaosActor::Consumer(c) => c.round_barrier(now, shared),
            ChaosActor::Churn(ch) => ch.round_barrier(now, shared),
        }
    }
}

/// Run one unit under an explicit tracer (spans, per-shard metrics and
/// the conservation audit all report into it; pass the disabled handle
/// to run dark). `seed` must already be split per unit; `lanes` picks
/// the PDES lane count (1 = the reference schedule, which every other
/// count replays bit for bit).
pub fn run_unit(
    unit: usize,
    seed: u64,
    smoke: bool,
    lanes: usize,
    tracer: &TraceHandle,
) -> Result<ChaosRow, XememError> {
    let (_, kittens, rounds) = geometry(smoke);
    let mut rng = SimRng::seed_from_u64(seed);

    // Fault schedule: shard-scoped outages plus replica crashes. Crash
    // targets stay off slot 0 (the topology root — killing it would
    // sever routing for the whole node, which is a different
    // experiment) and never take both replicas of one shard, so every
    // shard survives its failovers and the workload keeps running.
    let mut plan = FaultPlan::new();
    for _ in 0..12 {
        let at = SimTime::from_nanos(rng.uniform_u64(HORIZON_NS / 10, HORIZON_NS));
        let dur = SimDuration::from_nanos(rng.uniform_u64(20_000, 150_000));
        let shard = rng.uniform_u64(0, SHARDS as u64) as usize;
        plan = plan.name_server_shard_outage(at, shard, dur);
    }
    let mut crashed: Vec<usize> = Vec::new();
    while crashed.len() < 4 {
        let slot = rng.uniform_u64(1, (SHARDS * REPLICAS) as u64) as usize;
        let partner = (slot + SHARDS) % (SHARDS * REPLICAS);
        if crashed.contains(&slot) || crashed.contains(&partner) {
            continue;
        }
        let at = SimTime::from_nanos(rng.uniform_u64(HORIZON_NS / 10, HORIZON_NS));
        plan = plan.crash_enclave(at, slot);
        crashed.push(slot);
    }
    // Two workload-enclave crashes: their exports get revoked through
    // the crash-consistent protocol while consumers hold leases.
    for _ in 0..2 {
        let slot = rng.uniform_u64((SHARDS * REPLICAS) as u64, (kittens + 1) as u64) as usize;
        let at = SimTime::from_nanos(rng.uniform_u64(HORIZON_NS / 10, HORIZON_NS));
        plan = plan.crash_enclave(at, slot);
    }

    // A Kitten process image is text+data+stack (12 MiB) plus heap,
    // physically contiguous; worker enclaves host an exporter (2 MiB
    // heap for its export buffers) and a consumer.
    let mut b = SystemBuilder::new().linux_management("linux", 4, 128 * MIB);
    for i in 0..kittens {
        b = b.kitten_cokernel(&format!("k{i}"), 1, 36 * MIB);
    }
    let mut sys = b
        .name_service_shards(SHARDS, REPLICAS)
        .with_fault_plan(plan, seed)
        .with_tracer(tracer.clone())
        .build()?;

    let enclaves = kittens + 1;
    let baselines: Vec<Option<u64>> = (0..enclaves)
        .map(|i| {
            let e = xemem::EnclaveRef(i);
            sys.enclave_alive(e).then(|| sys.free_frames_of(e).unwrap())
        })
        .collect();

    let mut ok_ops = 0u64;
    let mut failed_ops = 0u64;
    let mut stale_reads = 0u64;
    macro_rules! attempt {
        ($r:expr) => {
            match $r {
                Ok(v) => {
                    ok_ops += 1;
                    Some(v)
                }
                Err(_) => {
                    failed_ops += 1;
                    None
                }
            }
        };
    }

    // 16 exporter/consumer pairs on slots past the replica set.
    let first_free = SHARDS * REPLICAS;
    let n_workers = 16.min(enclaves - first_free);
    let mut exporters: Vec<ProcessRef> = Vec::new();
    let mut consumers: Vec<ProcessRef> = Vec::new();
    for w in 0..n_workers {
        let enc = xemem::EnclaveRef(first_free + w);
        if let Some(p) = attempt!(sys.spawn_process(enc, 2 * MIB)) {
            exporters.push(p);
        }
        if let Some(p) = attempt!(sys.spawn_process(enc, MIB)) {
            consumers.push(p);
        }
    }

    // Initial exports: 4 named keys per exporter, hash-spread over
    // every shard.
    let mut gen = 0u64;
    let mut live: Vec<(ProcessRef, xemem::Segid, String)> = Vec::new();
    let removed: Vec<(String, xemem::Segid, SimTime)> = Vec::new();
    for (w, &exporter) in exporters.iter().enumerate() {
        for _ in 0..4 {
            if let Some(buf) = attempt!(sys.alloc_buffer(exporter, 64 * 1024)) {
                let name = format!("c{unit}:{w}:{gen}");
                gen += 1;
                if let Some(segid) = attempt!(sys.xpmem_make(exporter, buf, 64 * 1024, Some(&name)))
                {
                    live.push((exporter, segid, name));
                }
            }
        }
    }

    // The workload proper runs on the PDES round grid: every consumer
    // and the churn driver fire at T_r = t0 + r·(horizon/rounds), and
    // the engine merges their barrier events by (time, order) — so the
    // op sequence is identical at every lane and worker count.
    let grid = Grid {
        t0_ns: sys.clock().now().as_nanos(),
        stride_ns: HORIZON_NS / rounds,
        rounds,
    };
    let mut actors: Vec<ChaosActor> = Vec::new();
    for (c, &consumer) in consumers.iter().enumerate() {
        let scratch = attempt!(sys.alloc_buffer(consumer, 4096));
        actors.push(ChaosActor::Consumer(Consumer {
            c,
            p: consumer,
            scratch,
            round: 0,
            grid,
            local_ok: 0,
            local_failed: 0,
            local_max_end: SimTime::ZERO,
        }));
    }
    actors.push(ChaosActor::Churn(Churn {
        rng,
        exporters: exporters.clone(),
        unit,
        gen,
        order: consumers.len() as u64,
        round: 0,
        grid,
    }));

    let lookahead = sys.pdes_lookahead();
    let mut ctx = ChaosCtx {
        sys,
        tracer: tracer.clone(),
        live,
        removed,
        ok_ops,
        failed_ops,
        stale_reads,
        max_end: SimTime::from_nanos(grid.t0_ns),
    };
    run_lanes(&PdesConfig::new(lanes, lookahead), &mut actors, &mut ctx);
    let ChaosCtx {
        sys: sys_back,
        ok_ops: ok_back,
        failed_ops: failed_back,
        stale_reads: stale_back,
        max_end,
        ..
    } = ctx;
    let mut sys = sys_back;
    ok_ops = ok_back;
    failed_ops = failed_back;
    stale_reads = stale_back;

    // March the clock past everything the grid booked, so teardown (and
    // any straggling fault deliveries) happen after the workload.
    let target = SimTime::from_nanos(grid.t0_ns + grid.stride_ns * rounds).max(max_end);
    if sys.clock().now() < target {
        sys.clock().advance_to(target);
    }

    // Graceful teardown, then the leak audit: every surviving enclave
    // must be back at its baseline and every crash loan drained.
    for p in exporters.iter().chain(consumers.iter()) {
        attempt!(sys.exit_process(*p));
    }
    for (i, base) in baselines.iter().enumerate() {
        let e = xemem::EnclaveRef(i);
        if let (Some(base), true) = (base, sys.enclave_alive(e)) {
            let now = sys.free_frames_of(e).unwrap();
            assert_eq!(
                now, *base,
                "unit {unit}: enclave {i} leaked or double-freed frames ({now} vs {base})"
            );
        }
    }
    assert_eq!(
        sys.outstanding_loans(),
        0,
        "unit {unit}: unsettled frame loans"
    );
    assert_eq!(stale_reads, 0, "unit {unit}: post-revocation stale reads");

    let ns = sys.name_service();
    let failovers = (0..ns.shard_count()).map(|s| ns.failover_count(s)).sum();
    // `ns:failover:shard{s}:lost{n}` marks n registrations dropped as
    // unreplicated when shard s's leader died.
    let lost_registrations: u64 = sys
        .events()
        .with_prefix("ns:failover:shard")
        .filter_map(|e| e.label.split(":lost").nth(1))
        .filter_map(|n| n.parse::<u64>().ok())
        .sum();

    Ok(ChaosRow {
        unit,
        enclaves,
        ok_ops,
        failed_ops,
        failovers,
        lost_registrations,
        stale_reads,
        clock_ns: sys.clock().now().as_nanos(),
    })
}

/// Run the whole suite through a parallel session whose per-run tracers
/// are conservation-audited by the caller's epilogue. `lanes` is the
/// intra-unit PDES lane count; rows are bit-identical at any value.
pub fn run(
    session: &mut crate::driver::ParSession,
    smoke: bool,
    lanes: usize,
) -> Result<Vec<ChaosRow>, XememError> {
    let (units, _, _) = geometry(smoke);
    session.run(units, |i, tracer| {
        let _scope = tracer.scope();
        run_unit(
            i,
            xemem_sim::split_seed(ROOT_SEED, i as u64),
            smoke,
            lanes,
            tracer,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xemem::TraceHandle;

    /// The tentpole determinism claim, unit-sized: one chaos unit run
    /// at lanes {2, 5, 8} reproduces the lanes=1 reference row — every
    /// counter, every clock reading — bit for bit.
    #[test]
    fn lanes_replay_the_reference_unit_bit_for_bit() {
        let seed = xemem_sim::split_seed(ROOT_SEED, 1);
        let reference = run_unit(1, seed, true, 1, &TraceHandle::disabled()).unwrap();
        assert!(reference.ok_ops > 0);
        for lanes in [2usize, 5, 8] {
            let row = run_unit(1, seed, true, lanes, &TraceHandle::disabled()).unwrap();
            assert_eq!(row, reference, "lanes={lanes} diverged from the reference");
        }
    }
}
