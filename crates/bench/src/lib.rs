//! # xemem-bench
//!
//! The experiment harness: one module (and one binary) per figure/table
//! of the paper's evaluation, plus the ablation studies DESIGN.md calls
//! out. Each module exposes a `run(...)` function returning structured
//! rows so the binaries stay thin and integration tests can execute the
//! experiments in smoke mode.
//!
//! | module | regenerates |
//! |---|---|
//! | [`fig5`] | Fig. 5 — attach / attach+read throughput vs RDMA verbs |
//! | [`fig6`] | Fig. 6 — throughput vs number of concurrent enclaves |
//! | [`table2`] | Table 2 — VM attach throughput, with/without RB-tree inserts |
//! | [`fig7`] | Fig. 7 — Kitten noise profile under attachment service |
//! | [`fig8`] | Fig. 8 — single-node in situ benchmark (Table 3 configs) |
//! | [`fig9`] | Fig. 9 — multi-node weak scaling |
//! | [`ablations`] | memory-map structure, IPI handler placement, name-server placement |

pub mod ablations;
pub mod driver;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod nameserver_chaos;
pub mod nameserver_scaling;
pub mod pdes_churn;
pub mod pool_throughput;
pub mod table2;
pub mod tier_composed;
pub mod wallclock;

use std::fmt::Write as _;

use xemem::trace_layer;

/// Minimal CLI options shared by the figure binaries.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// Drastically reduce sizes/iterations (used by tests).
    pub smoke: bool,
    /// Override the number of repetitions.
    pub runs: Option<u32>,
    /// Emit machine-readable JSON after the table.
    pub json: bool,
    /// Enable the tracing/metrics layer for this run.
    pub trace: bool,
    /// Write a chrome://tracing JSON export here (implies `trace`); a
    /// folded-stack export lands next to it at `<path>.folded`.
    pub trace_out: Option<String>,
    /// Write an `xemem-obs` causal report here (implies `trace`):
    /// every span with its parent link and timeline, every causal
    /// edge, and the full metrics registry, merged across runs in run
    /// order — the input format of the `obs` analyzer.
    pub obs_report: Option<String>,
    /// Host worker threads for independent runs (`None` = available
    /// parallelism, `Some(1)` = serial). Results are bit-identical
    /// either way; see [`driver`].
    pub jobs: Option<usize>,
    /// PDES event lanes *within* one simulation (`None` = 1, the serial
    /// reference). Results are bit-identical at any lane count; see
    /// `xemem_sim::pdes`.
    pub lanes: Option<usize>,
}

impl Args {
    /// Parse from `std::env::args`. Recognized: `--smoke`, `--runs N`,
    /// `--json`, `--trace`, `--trace-out PATH`, `--jobs N`.
    pub fn parse() -> Args {
        let mut out = Args::default();
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--smoke" => out.smoke = true,
                "--json" => out.json = true,
                "--runs" => {
                    out.runs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .or_else(|| panic!("--runs requires an integer"));
                }
                "--trace" => out.trace = true,
                "--trace-out" => {
                    out.trace_out = Some(it.next().expect("--trace-out requires a path"));
                    out.trace = true;
                }
                "--obs-report" => {
                    out.obs_report = Some(it.next().expect("--obs-report requires a path"));
                    out.trace = true;
                }
                "--jobs" => {
                    out.jobs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .or_else(|| panic!("--jobs requires an integer >= 1"));
                }
                "--lanes" => {
                    out.lanes = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .or_else(|| panic!("--lanes requires an integer >= 1"));
                }
                other => panic!(
                    "unknown argument: {other} (expected --smoke, --runs N, --json, --trace, --trace-out PATH, --obs-report PATH, --jobs N, --lanes N)"
                ),
            }
        }
        out
    }

    /// Whether tracing was requested via flags or `XEMEM_TRACE=1`.
    pub fn tracing_requested(&self) -> bool {
        self.trace || self.trace_out.is_some() || trace_layer::env_requested()
    }

    /// Effective worker count: `--jobs N`, defaulting to the host's
    /// available parallelism.
    pub fn effective_jobs(&self) -> usize {
        self.jobs.unwrap_or_else(xemem_sim::host_parallelism)
    }

    /// Effective intra-run lane count: `--lanes N`, defaulting to 1
    /// (the serial reference schedule — which every other lane count
    /// replays bit for bit).
    pub fn effective_lanes(&self) -> usize {
        self.lanes.unwrap_or(1).max(1)
    }
}

/// Render an aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let line = |out: &mut String, cells: &[String]| {
        let rendered: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "  {}", rendered.join("  "));
    };
    line(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    line(
        &mut out,
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
    );
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Format a mean ± stddev pair.
pub fn pm(mean: f64, stddev: f64) -> String {
    format!("{mean:.2} ± {stddev:.2}")
}

/// Sizes swept by Figs. 5–6 (bytes), paper axis: 128 MB … 1 GB.
pub const SWEEP_SIZES: [u64; 4] = [128 << 20, 256 << 20, 512 << 20, 1 << 30];

/// Smoke-mode sizes.
pub const SMOKE_SIZES: [u64; 2] = [4 << 20, 8 << 20];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let s = render_table(
            "t",
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(s.contains("== t =="));
        assert!(s.contains("333"));
    }

    #[test]
    fn pm_formats() {
        assert_eq!(pm(12.3456, 0.789), "12.35 ± 0.79");
    }
}
