//! Fig. 5 — cross-enclave throughput using shared memory vs RDMA verbs.
//!
//! Paper setup: one Kitten co-kernel enclave plus the Linux control
//! enclave. A Kitten process exports a region of 128 MB–1 GB; a Linux
//! process repeatedly attaches (and optionally reads out the contents);
//! each size runs 500 attachments. The RDMA comparison is a write
//! bandwidth test between two SR-IOV virtual functions.
//!
//! Expected shape (paper): XEMEM attach ≈ 13 GB/s flat across sizes,
//! attach+read ≈ 12 GB/s, RDMA just under 3.5 GB/s.

use serde::Serialize;
use xemem::{SystemBuilder, TraceHandle, XememError};
use xemem_rdma::write_bandwidth_test;
use xemem_sim::stats::throughput_gbps;
use xemem_sim::{CostModel, SimDuration, SimTime};

/// One size point of the figure.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Row {
    /// Region size in bytes.
    pub size: u64,
    /// Attach-only throughput, GB/s.
    pub attach_gbps: f64,
    /// Attach + read-out throughput, GB/s.
    pub attach_read_gbps: f64,
    /// RDMA write bandwidth, GB/s.
    pub rdma_gbps: f64,
    /// Attachments measured.
    pub iterations: u32,
}

/// Run the experiment over the given sizes with `iters` attachments per
/// size.
pub fn run(sizes: &[u64], iters: u32) -> Result<Vec<Fig5Row>, XememError> {
    run_with(sizes, iters, &TraceHandle::disabled())
}

/// [`run`] with an explicit tracer. When the handle is enabled, every
/// size point is audited: the sum of attributed span durations must
/// equal the virtual time that elapsed on that system's clock, exactly.
pub fn run_with(
    sizes: &[u64],
    iters: u32,
    tracer: &TraceHandle,
) -> Result<Vec<Fig5Row>, XememError> {
    sizes.iter().map(|&s| run_size(s, iters, tracer)).collect()
}

/// One size point of the sweep — the independent unit the parallel run
/// driver shards. The point builds its own system (own clock, own
/// allocators), so concurrent points cannot interact; when `tracer` is
/// enabled the point audits its own clock tiling before returning.
pub fn run_size(size: u64, iters: u32, tracer: &TraceHandle) -> Result<Fig5Row, XememError> {
    let cost = CostModel::default();
    let scope = tracer.scope();
    let mut sys = SystemBuilder::new()
        .with_cost(cost.clone())
        .with_tracer(tracer.clone())
        .linux_management("linux", 4, 256 << 20)
        .kitten_cokernel("kitten", 1, size + (64 << 20))
        .build()?;
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let exporter = sys.spawn_process(kitten, size + (16 << 20))?;
    let attacher = sys.spawn_process(linux, 16 << 20)?;
    let buf = sys.alloc_buffer(exporter, size)?;
    sys.prepare_buffer(exporter, buf, size)?;
    let segid = sys.xpmem_make(exporter, buf, size, None)?;
    let apid = sys.xpmem_get(attacher, segid)?;

    let mut attach_total = SimDuration::ZERO;
    for _ in 0..iters {
        let start = sys.clock().now();
        let outcome = sys.xpmem_attach_outcome(attacher, apid, 0, size)?;
        attach_total += outcome.end.duration_since(start);
        sys.xpmem_detach(attacher, outcome.va)?;
    }
    // The attach+read series adds the time to read the contents out
    // of the freshly attached mapping.
    let read_each = cost.attached_read(size);
    let read_total = attach_total + read_each.times(iters as u64);

    if tracer.is_enabled() {
        let elapsed = sys.clock().now().duration_since(SimTime::ZERO);
        tracer
            .audit_scope(&scope, Some(elapsed))
            .expect("fig5 conservation audit");
    }

    let rdma_gbps = write_bandwidth_test(&cost, size, iters.clamp(5, 50));
    Ok(Fig5Row {
        size,
        attach_gbps: throughput_gbps(size * iters as u64, attach_total),
        attach_read_gbps: throughput_gbps(size * iters as u64, read_total),
        rdma_gbps,
        iterations: iters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_shape_holds() {
        let rows = run(&[4 << 20, 16 << 20], 5).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.attach_gbps > 3.0 * r.rdma_gbps,
                "attach {} not ≫ rdma {}",
                r.attach_gbps,
                r.rdma_gbps
            );
            assert!(r.attach_read_gbps < r.attach_gbps);
            assert!(r.attach_read_gbps > 0.8 * r.attach_gbps);
        }
    }
}
