//! Lane-parallel churn scenario for the wall-clock harness.
//!
//! The figure workloads are barrier-dominated (every cross-enclave op
//! serializes on the shared [`System`]), so they prove the PDES
//! engine's *determinism* but cannot show its *speedup*. This scenario
//! is the converse: a fleet of enclave-local actors whose lane phase
//! does real host work — buffer writes, reads and checksums through
//! [`xemem::LanePart`] — with a trivial barrier. At `--lanes 8` the
//! engine runs the lane phases of different lanes on worker threads
//! concurrently, and the wall-clock harness times the same schedule at
//! 1 worker vs [`crate::wallclock::PARALLEL_JOBS`] workers.
//!
//! The digest (a fold of every byte each actor read, in actor order)
//! and the virtual end time are bit-identical at every worker count —
//! that is the determinism contract the speedup must not break.

use xemem::{LanePart, ProcessRef, System, SystemBuilder, VirtAddr, XememError};
use xemem_sim::pdes::{run_lanes, PdesActor, PdesConfig};
use xemem_sim::{SimDuration, SimTime};

/// Enclaves (= actors = units of lane-parallel work).
pub const CHURN_ENCLAVES: usize = 32;
/// Rounds per actor.
pub const CHURN_ROUNDS: u64 = 300;
/// Event lanes the scenario always uses — the worker count is the
/// variable under test.
pub const CHURN_LANES: usize = 8;
/// Per-enclave working buffer.
const BUF_LEN: u64 = 256 * 1024;
/// Bytes read and folded into the checksum per chunk.
const CHUNK: u64 = 16 * 1024;
/// Chunks read per round.
const CHUNKS_PER_ROUND: u64 = 4;
/// Grid stride between an actor's events — comfortably above the
/// conservative lookahead (900 ns for the default cost model).
const STRIDE_NS: u64 = 2_000;

/// One scenario outcome. Every field must be bit-identical across
/// worker counts for the same `(lanes, workers-independent schedule)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnOutcome {
    /// Order-independent? No — order-*fixed*: FNV fold of each actor's
    /// read bytes, folded across actors in index order.
    pub digest: u64,
    /// Virtual end time of the schedule.
    pub end_ns: u64,
    /// Windows the engine executed.
    pub windows: u64,
    /// Barrier events processed.
    pub events: u64,
}

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

struct ChurnActor {
    id: usize,
    p: ProcessRef,
    base: VirtAddr,
    round: u64,
    digest: u64,
    scratch: Vec<u8>,
}

impl ChurnActor {
    fn event_time(&self) -> SimTime {
        SimTime::from_nanos(self.round * STRIDE_NS)
    }
}

impl PdesActor<System> for ChurnActor {
    fn lane_key(&self) -> u64 {
        self.p.enclave.0 as u64
    }

    fn order_key(&self) -> u64 {
        self.id as u64
    }

    fn first_event(&self) -> Option<SimTime> {
        (self.round < CHURN_ROUNDS).then(|| self.event_time())
    }

    fn has_local(&self) -> bool {
        true
    }

    fn local(&mut self, now: SimTime, part: &mut LanePart<'_>) {
        // One page-sized write, then a sweep of chunk reads folded into
        // the running checksum — the host work the lane phase
        // parallelizes.
        let slots = BUF_LEN / CHUNK;
        let woff = (self.round % slots) * CHUNK;
        let pattern = [(self.round as u8) ^ (self.id as u8); 4096];
        let mut t = part
            .write_at(self.p, VirtAddr(self.base.0 + woff), &pattern, now)
            .expect("churn write");
        for k in 0..CHUNKS_PER_ROUND {
            let roff = ((self.round * CHUNKS_PER_ROUND + k) % slots) * CHUNK;
            t = part
                .read_at(self.p, VirtAddr(self.base.0 + roff), &mut self.scratch, t)
                .expect("churn read");
            self.digest = fnv(self.digest, &self.scratch);
        }
    }

    fn barrier(&mut self, _now: SimTime, _shared: &mut System) -> Option<SimTime> {
        self.round += 1;
        (self.round < CHURN_ROUNDS).then(|| self.event_time())
    }
}

/// Build the fleet and run the schedule at the given worker count
/// (`0` = the host's available parallelism). The schedule itself —
/// lanes, events, virtual times — does not depend on `workers`.
pub fn run_churn(workers: usize) -> Result<ChurnOutcome, XememError> {
    let mut b = SystemBuilder::new().linux_management("linux", 4, 64 << 20);
    for i in 0..CHURN_ENCLAVES {
        b = b.kitten_cokernel(&format!("k{i}"), 1, 16 << 20);
    }
    let mut sys = b.build()?;
    let mut actors = Vec::with_capacity(CHURN_ENCLAVES);
    for i in 0..CHURN_ENCLAVES {
        // Slot 0 is the management enclave; actors live on the kittens.
        let e = xemem::EnclaveRef(i + 1);
        let p = sys.spawn_process(e, 4 << 20)?;
        let base = sys.alloc_buffer(p, BUF_LEN)?;
        sys.prepare_buffer(p, base, BUF_LEN)?;
        actors.push(ChurnActor {
            id: i,
            p,
            base,
            round: 0,
            digest: 0xcbf2_9ce4_8422_2325,
            scratch: vec![0u8; CHUNK as usize],
        });
    }
    let lookahead = sys.pdes_lookahead();
    debug_assert!(lookahead <= SimDuration::from_nanos(STRIDE_NS));
    let cfg = PdesConfig::new(CHURN_LANES, lookahead).with_workers(workers);
    let (end, stats) = run_lanes(&cfg, &mut actors, &mut sys);
    let digest = actors.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, a| {
        fnv(h, &a.digest.to_le_bytes())
    });
    Ok(ChurnOutcome {
        digest,
        end_ns: end.as_nanos(),
        windows: stats.windows,
        events: stats.events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The scenario's determinism contract: serial and multi-worker
    /// runs produce the same digest, end time, and window/event counts.
    #[test]
    fn worker_counts_agree_bitwise() {
        let serial = run_churn(1).unwrap();
        assert_eq!(serial.events, CHURN_ENCLAVES as u64 * CHURN_ROUNDS);
        let parallel = run_churn(4).unwrap();
        assert_eq!(serial, parallel);
    }
}
