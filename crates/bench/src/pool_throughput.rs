//! Buffer-pool throughput figure — acquire/release and ring ops per
//! virtual second as the consumer-enclave count grows, with a crash
//! sweep injected mid-run on the multi-consumer units.
//!
//! Each unit exports one [`xemem_pool::BufferPool`] from the Linux
//! management enclave and joins N Kitten consumers (N is the sweep
//! axis). The workload runs on a PDES round grid under
//! [`xemem_sim::pdes::run_lanes`]: the producer actor sweeps crash
//! notices, then acquires and publishes one slot into every live
//! consumer's ring per round; each consumer actor pops up to two
//! visible entries, carries holds across rounds, and releases its
//! oldest hold — so a mid-run crash always finds both consumed holds
//! and in-flight ring entries to reclaim. Units with at least two
//! consumers schedule one `pool_consumer_crash` through the fault
//! plan; the unit asserts the crashed consumer's references are swept
//! exactly once and that the pool's end-of-run leak check passes
//! (every slot back on the free list, refs all zero).
//!
//! Every pool op is charged in virtual time and framed on the
//! detached timeline, so the session epilogue's conservation audit
//! covers the pool exactly like the protocol paths; publishes and
//! consumes are linked by `slot_publish_consume` edges and sweeps by
//! `crash_slot_sweep` edges, which flow into `--trace-out` /
//! `--obs-report` exports. Units are split-seeded from the root seed,
//! and the workload grid is deterministic, so the printed table is
//! byte-identical at `--jobs 1` and `--jobs N`, and at `--lanes 1`
//! and `--lanes N` — CI's `pool-chaos` job diffs exactly that.

use serde::Serialize;
use xemem::XememError;
use xemem::{EnclaveRef, FaultPlan, LanePart, ProcessRef, System, SystemBuilder, TraceHandle};
use xemem_pool::{BufferPool, ConsumerId, Holder, PoolError, SlotGuard};
use xemem_sim::pdes::{run_lanes, LaneShared, PdesActor, PdesConfig};
use xemem_sim::{SimRng, SimTime};

const MIB: u64 = 1 << 20;
/// Root seed for the suite.
pub const ROOT_SEED: u64 = 0x900_15EED;
/// Payload bytes per pool slot.
pub const SLOT_BYTES: u64 = 4 * 1024;
/// Per-consumer ring capacity.
pub const RING_CAP: usize = 8;

/// Virtual-time horizon of each unit's workload grid.
const HORIZON_NS: u64 = 20_000_000; // 20 ms
/// Crash window (absolute virtual time): far past setup — spawns,
/// pool export, joins all complete within the first couple of
/// milliseconds even at 16 consumers — and well inside the grid.
const CRASH_EARLIEST_NS: u64 = 10_000_000;
const CRASH_LATEST_NS: u64 = 15_000_000;

/// One unit's outcome row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PoolRow {
    /// Unit index (position on the consumer-count axis).
    pub unit: usize,
    /// Enclaves in the unit (1 management + N consumers).
    pub enclaves: usize,
    /// Slots acquired by the producer.
    pub acquires: u64,
    /// References released (producer bounces + consumer holds).
    pub releases: u64,
    /// Ring publishes that completed.
    pub published: u64,
    /// Ring entries consumed.
    pub consumed: u64,
    /// References reclaimed by crash sweeps.
    pub swept: u64,
    /// Operations that failed (ring full, crashed consumer, exhausted).
    pub failed_ops: u64,
    /// Deepest any consumer ring got during the run.
    pub ring_peak: u64,
    /// Completed pool ops (acquire + release + publish + consume) per
    /// virtual millisecond of the workload horizon.
    pub ops_per_vms: u64,
    /// Final virtual clock, nanoseconds.
    pub clock_ns: u64,
}

/// Sweep geometry: consumer counts per unit and grid rounds.
pub fn geometry(smoke: bool) -> (&'static [usize], u64) {
    if smoke {
        (&[1, 2, 4], 10)
    } else {
        (&[1, 2, 4, 8, 16], 100)
    }
}

/// Shared state the actors coordinate through at barriers.
struct PoolCtx {
    sys: System,
    pool: BufferPool,
    acquires: u64,
    releases: u64,
    published: u64,
    consumed: u64,
    swept: u64,
    failed_ops: u64,
    ring_peak: u64,
}

impl LaneShared for PoolCtx {
    type Part<'a> = LanePart<'a>;

    fn lane_parts(&mut self, lanes: usize) -> Vec<LanePart<'_>> {
        self.sys.lane_parts(lanes)
    }

    fn on_window(&mut self, start: SimTime) {
        <System as LaneShared>::on_window(&mut self.sys, start);
    }
}

fn grid_at(t0_ns: u64, stride_ns: u64, round: u64) -> SimTime {
    SimTime::from_nanos(t0_ns + round * stride_ns)
}

/// Producer (order 0) and consumer (order 1..) actors on the round
/// grid, merged at barriers by `(time, order)` — so the op sequence is
/// identical at every lane and worker count.
struct Actor {
    order: u64,
    p: ProcessRef,
    /// `Some(id)` for consumers; `None` marks the producer.
    consumer: Option<ConsumerId>,
    held: Vec<SlotGuard>,
    round: u64,
    rounds: u64,
    t0_ns: u64,
    stride_ns: u64,
    n_consumers: usize,
}

impl Actor {
    fn producer_round(&mut self, at: SimTime, ctx: &mut PoolCtx) {
        let (n, _t) = ctx.pool.sweep_at(&mut ctx.sys, at);
        ctx.swept += n;
        let mut t = at;
        for c in 0..self.n_consumers {
            let id = ConsumerId(c);
            if !ctx.pool.consumer_alive(id) {
                continue;
            }
            match ctx.pool.acquire_at(t) {
                Ok((guard, end)) => {
                    ctx.acquires += 1;
                    t = end;
                    match ctx.pool.publish_at(id, guard, t) {
                        Ok(end) => {
                            ctx.published += 1;
                            t = end;
                            ctx.ring_peak = ctx.ring_peak.max(ctx.pool.ring_depth(id) as u64);
                        }
                        Err((guard, _)) => {
                            // Ring full (or a barrier-window crash beat
                            // the sweep): take the reference back.
                            ctx.failed_ops += 1;
                            if let Ok(end) = ctx.pool.release_at(Holder::Exporter, guard, t) {
                                ctx.releases += 1;
                                t = end;
                            }
                        }
                    }
                }
                Err(_) => ctx.failed_ops += 1,
            }
        }
    }

    fn consumer_round(&mut self, at: SimTime, ctx: &mut PoolCtx) {
        let id = self.consumer.expect("consumer actor");
        let mut t = at;
        for _ in 0..2 {
            match ctx.pool.consume_at(id, t) {
                Ok((Some(guard), end)) => {
                    ctx.consumed += 1;
                    t = end;
                    self.held.push(guard);
                }
                Ok((None, end)) => {
                    t = end;
                    break;
                }
                Err(_) => {
                    // Crashed and swept: the guards this actor still
                    // carries were reclaimed; drop the stale handles.
                    ctx.failed_ops += 1;
                    self.held.clear();
                    return;
                }
            }
        }
        // Release the oldest hold, keep the rest in flight so a crash
        // always finds outstanding references.
        if self.held.len() > 1 || (self.round + 1 == self.rounds && !self.held.is_empty()) {
            let guard = self.held.remove(0);
            match ctx.pool.release_at(Holder::Consumer(id.0), guard, t) {
                Ok(_) => ctx.releases += 1,
                Err(_) => {
                    ctx.failed_ops += 1;
                    self.held.clear();
                }
            }
        }
    }
}

impl PdesActor<PoolCtx> for Actor {
    fn lane_key(&self) -> u64 {
        self.p.enclave.0 as u64
    }

    fn order_key(&self) -> u64 {
        self.order
    }

    fn first_event(&self) -> Option<SimTime> {
        Some(grid_at(self.t0_ns, self.stride_ns, 0))
    }

    fn has_local(&self) -> bool {
        false
    }

    fn local(&mut self, _now: SimTime, _part: &mut LanePart<'_>) {}

    fn barrier(&mut self, now: SimTime, shared: &mut PoolCtx) -> Option<SimTime> {
        if self.consumer.is_none() {
            self.producer_round(now, shared);
        } else {
            self.consumer_round(now, shared);
        }
        self.round += 1;
        (self.round < self.rounds).then(|| grid_at(self.t0_ns, self.stride_ns, self.round))
    }
}

fn pool_err(e: PoolError) -> XememError {
    match e {
        PoolError::Sys(e) => e,
        other => panic!("pool setup failed deterministically: {other}"),
    }
}

/// Run one unit: `consumers` Kitten enclaves against one exported
/// pool, with a crash sweep on multi-consumer units. `seed` must
/// already be split per unit; `lanes` picks the PDES lane count (1 =
/// the reference schedule, which every other count replays bit for
/// bit).
pub fn run_unit(
    unit: usize,
    consumers: usize,
    seed: u64,
    rounds: u64,
    lanes: usize,
    tracer: &TraceHandle,
) -> Result<PoolRow, XememError> {
    let capacity = 4 * consumers as u32;
    let mut rng = SimRng::seed_from_u64(seed);

    // One pool-consumer crash on multi-consumer units, landing in the
    // middle of the grid; single-consumer units stay crash-free so the
    // sweep axis keeps a clean baseline.
    let mut plan = FaultPlan::new().pool_capacity(capacity as usize);
    if consumers >= 2 {
        let at = rng.uniform_u64(CRASH_EARLIEST_NS, CRASH_LATEST_NS);
        let slot = rng.uniform_u64(1, (consumers + 1) as u64) as usize;
        let pool_slot = rng.uniform_u64(0, u64::from(capacity)) as usize;
        plan = plan.pool_consumer_crash(SimTime::from_nanos(at), slot, pool_slot);
    }
    plan.validate(consumers + 1, 1).expect("well-formed plan");

    let mut b = SystemBuilder::new().linux_management("linux", 4, 256 * MIB);
    for i in 0..consumers {
        b = b.kitten_cokernel(&format!("k{i}"), 1, 64 * MIB);
    }
    let mut sys = b
        .with_fault_plan(plan, seed)
        .with_tracer(tracer.clone())
        .build()?;

    let producer = sys.spawn_process(EnclaveRef(0), 64 * MIB)?;
    let t_start = sys.clock().now();
    let (mut pool, _t) = BufferPool::create_at(
        &mut sys,
        producer,
        capacity,
        SLOT_BYTES,
        Some("pool"),
        RING_CAP,
        t_start,
    )
    .map_err(pool_err)?;

    let stride_ns = HORIZON_NS / rounds;
    let mut actors: Vec<Actor> = Vec::new();
    for c in 0..consumers {
        let p = sys.spawn_process(EnclaveRef(1 + c), 2 * MIB)?;
        // Anchor every join at the (still early) clock rather than a
        // chained detached timestamp: setup must finish before the
        // crash window opens.
        let join_at = sys.clock().now();
        let (id, _end) = pool.join_at(&mut sys, p, join_at).map_err(pool_err)?;
        actors.push(Actor {
            order: 1 + c as u64,
            p,
            consumer: Some(id),
            held: Vec::new(),
            round: 0,
            rounds,
            t0_ns: 0, // patched below once setup is done
            stride_ns,
            n_consumers: consumers,
        });
    }
    let t0_ns = sys.clock().now().as_nanos();
    for a in &mut actors {
        a.t0_ns = t0_ns;
    }
    actors.insert(
        0,
        Actor {
            order: 0,
            p: producer,
            consumer: None,
            held: Vec::new(),
            round: 0,
            rounds,
            t0_ns,
            stride_ns,
            n_consumers: consumers,
        },
    );

    let lookahead = sys.pdes_lookahead();
    let mut ctx = PoolCtx {
        sys,
        pool,
        acquires: 0,
        releases: 0,
        published: 0,
        consumed: 0,
        swept: 0,
        failed_ops: 0,
        ring_peak: 0,
    };
    run_lanes(&PdesConfig::new(lanes, lookahead), &mut actors, &mut ctx);
    let PoolCtx {
        mut sys,
        mut pool,
        acquires,
        mut releases,
        published,
        mut consumed,
        mut swept,
        mut failed_ops,
        ring_peak,
    } = ctx;

    // Drain the rest of the schedule, then the end-of-run protocol:
    // one final sweep for any crash that fired after the last producer
    // barrier, live consumers release holds and drain rings, and the
    // leak oracle must pass.
    let target = SimTime::from_nanos(t0_ns + HORIZON_NS + 1);
    if sys.clock().now() < target {
        sys.clock().advance_to(target);
    }
    sys.deliver_pending_faults();
    let mut t = sys.clock().now();
    let (n, end) = pool.sweep_at(&mut sys, t);
    swept += n;
    t = t.max(end);
    for actor in &mut actors {
        let Some(id) = actor.consumer else { continue };
        if !pool.consumer_alive(id) {
            actor.held.clear();
            continue;
        }
        for guard in actor.held.drain(..) {
            match pool.release_at(Holder::Consumer(id.0), guard, t) {
                Ok(end) => {
                    releases += 1;
                    t = end;
                }
                Err(_) => failed_ops += 1,
            }
        }
        loop {
            match pool.consume_at(id, t) {
                Ok((Some(guard), end)) => {
                    consumed += 1;
                    t = end;
                    let end = pool
                        .release_at(Holder::Consumer(id.0), guard, t)
                        .expect("release drained entry");
                    releases += 1;
                    t = end;
                }
                Ok((None, end)) => {
                    t = end;
                    break;
                }
                Err(_) => {
                    failed_ops += 1;
                    break;
                }
            }
        }
    }
    pool.leak_check()
        .unwrap_or_else(|e| panic!("unit {unit}: pool leak check failed: {e}"));
    if consumers >= 2 {
        assert!(
            (0..consumers).any(|c| !pool.consumer_alive(ConsumerId(c))),
            "unit {unit}: the scheduled consumer crash never landed"
        );
        assert!(swept > 0, "unit {unit}: crash swept no references");
    }

    let ok_ops = acquires + releases + published + consumed;
    Ok(PoolRow {
        unit,
        enclaves: consumers + 1,
        acquires,
        releases,
        published,
        consumed,
        swept,
        failed_ops,
        ring_peak,
        ops_per_vms: ok_ops * 1_000_000 / HORIZON_NS,
        clock_ns: sys.clock().now().as_nanos(),
    })
}

/// Run the whole sweep through a parallel session whose per-run
/// tracers are conservation-audited by the caller's epilogue. `lanes`
/// is the intra-unit PDES lane count; rows are bit-identical at any
/// value.
pub fn run(
    session: &mut crate::driver::ParSession,
    smoke: bool,
    lanes: usize,
) -> Result<Vec<PoolRow>, XememError> {
    let (axis, rounds) = geometry(smoke);
    session.run(axis.len(), |i, tracer| {
        let _scope = tracer.scope();
        run_unit(
            i,
            axis[i],
            xemem_sim::split_seed(ROOT_SEED, i as u64),
            rounds,
            lanes,
            tracer,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xemem::TraceHandle;

    /// One multi-consumer unit (crash included) run at lanes {2, 5, 8}
    /// reproduces the lanes=1 reference row bit for bit.
    #[test]
    fn lanes_replay_the_reference_unit_bit_for_bit() {
        let seed = xemem_sim::split_seed(ROOT_SEED, 2);
        let reference = run_unit(2, 4, seed, 10, 1, &TraceHandle::disabled()).unwrap();
        assert!(reference.acquires > 0);
        assert!(reference.swept > 0, "the crash must sweep references");
        for lanes in [2usize, 5, 8] {
            let row = run_unit(2, 4, seed, 10, lanes, &TraceHandle::disabled()).unwrap();
            assert_eq!(row, reference, "lanes={lanes} diverged from the reference");
        }
    }
}
