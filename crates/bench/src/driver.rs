//! Bench-side layer over the sim run driver: parallel sweeps with
//! per-run trace rings and deterministic merged exports.
//!
//! [`ParSession`] is what the figure binaries use. Each call to
//! [`ParSession::run`] executes `n` independent units (sweep points,
//! grid cells, table rows) through [`xemem_sim::RunDriver`]:
//!
//! * every unit gets its **own** [`TraceHandle`] (its own rings and
//!   metrics registry) created *before* execution, indexed by unit —
//!   never by which worker ran it;
//! * results come back in plan order, so tables and JSON dumps are
//!   byte-identical at `--jobs 1` and `--jobs N`;
//! * errors are sequenced deterministically: the error of the
//!   lowest-indexed failing unit is returned, regardless of which
//!   worker hit an error first;
//! * enabled per-run tracers accumulate in the session keyed by a
//!   monotonically assigned run id, and [`ParSession::finish`] merges
//!   them with the run-id-keyed exporters in `xemem_trace`, audits
//!   every run, and prints the aggregate metrics summary.

use xemem::trace_layer::{self, MetricsSnapshot};
use xemem::{TraceHandle, XememError};
use xemem_sim::{RunDriver, RunPlan};

use crate::Args;

/// Ring capacity for per-run tracers: sweeps run many units, so each
/// unit's rings are kept smaller than the single-run default. Metrics
/// and conservation audits are exact regardless of ring capacity.
const PER_RUN_RING_SLOTS: usize = 1 << 12;
const PER_RUN_RINGS: usize = 8;
/// Ring sizing for obs-report sessions: the causal analyzer gates on
/// zero lost records, so runs that request an obs report get enough
/// per-enclave rings that the chaos smoke geometry never spills into
/// (and overwrites) the shared overflow ring, and enough slots per
/// ring that its busiest enclave never wraps.
const PER_RUN_RING_SLOTS_OBS: usize = 1 << 14;
const PER_RUN_RINGS_OBS: usize = 64;

/// A parallel bench session: worker count, tracing mode, and the
/// per-run tracers accumulated so far.
pub struct ParSession {
    jobs: usize,
    tracing: bool,
    obs: bool,
    runs: Vec<(u64, TraceHandle)>,
    next_run_id: u64,
}

impl ParSession {
    /// Session configured from parsed CLI args.
    pub fn new(args: &Args) -> ParSession {
        let mut s = ParSession::with(args.effective_jobs(), args.tracing_requested());
        s.obs = args.obs_report.is_some();
        s
    }

    /// Session configured from parsed CLI args but always traced —
    /// for suites whose contract includes the conservation audit.
    pub fn always_traced(args: &Args) -> ParSession {
        let mut s = ParSession::with(args.effective_jobs(), true);
        s.obs = args.obs_report.is_some();
        s
    }

    /// Session with an explicit worker count and tracing mode.
    pub fn with(jobs: usize, tracing: bool) -> ParSession {
        ParSession {
            jobs: jobs.max(1),
            tracing,
            obs: false,
            runs: Vec::new(),
            next_run_id: 0,
        }
    }

    /// Effective worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Whether units run under per-run tracers.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Per-run tracers accumulated so far, keyed by run id.
    pub fn traced_runs(&self) -> &[(u64, TraceHandle)] {
        &self.runs
    }

    /// Execute `n` independent units. `f` receives the unit index and
    /// the unit's own tracer (disabled when the session is untraced)
    /// and must not touch state shared with other units. Returns unit
    /// results in index order; on failure, the error of the
    /// lowest-indexed failing unit.
    pub fn run<T, F>(&mut self, n: usize, f: F) -> Result<Vec<T>, XememError>
    where
        T: Send,
        F: Fn(usize, &TraceHandle) -> Result<T, XememError> + Sync,
    {
        let tracers: Vec<TraceHandle> = (0..n)
            .map(|_| {
                if self.tracing {
                    let (slots, rings) = if self.obs {
                        (PER_RUN_RING_SLOTS_OBS, PER_RUN_RINGS_OBS)
                    } else {
                        (PER_RUN_RING_SLOTS, PER_RUN_RINGS)
                    };
                    TraceHandle::with_capacity(slots, rings)
                } else {
                    TraceHandle::disabled()
                }
            })
            .collect();
        let driver = RunDriver::new(RunPlan::new(n).with_jobs(self.jobs));
        let results = driver.execute(|ctx| f(ctx.index, &tracers[ctx.index]));
        if self.tracing {
            for (i, tracer) in tracers.into_iter().enumerate() {
                self.runs.push((self.next_run_id + i as u64, tracer));
            }
        }
        self.next_run_id += n as u64;
        results.into_iter().collect()
    }

    /// Aggregate metrics across all traced runs (zero when untraced).
    pub fn merged_metrics(&self) -> MetricsSnapshot {
        let mut agg = MetricsSnapshot::zero();
        for (_, tracer) in &self.runs {
            if let Some(snap) = tracer.metrics_snapshot() {
                agg.absorb(&snap);
            }
        }
        agg
    }

    /// End-of-session epilogue: write the merged chrome://tracing
    /// JSON (and folded stacks alongside) when `--trace-out` was given,
    /// the merged obs report when `--obs-report` was given, audit
    /// conservation on every run's tracer, and print the merged
    /// metrics summary. No-op when the session is untraced.
    pub fn finish(&self, args: &Args) {
        if !self.tracing {
            return;
        }
        if let Some(path) = &args.trace_out {
            std::fs::write(path, trace_layer::merge_chrome_trace_json(&self.runs))
                .expect("write merged chrome trace JSON");
            let folded = format!("{path}.folded");
            std::fs::write(&folded, trace_layer::merge_folded_stacks(&self.runs))
                .expect("write merged folded stacks");
            eprintln!(
                "trace: wrote {path} (chrome://tracing, {} runs) and {folded} (folded stacks)",
                self.runs.len()
            );
        }
        if let Some(path) = &args.obs_report {
            std::fs::write(path, trace_layer::merge_obs_report(&self.runs))
                .expect("write obs report");
            eprintln!("trace: wrote {path} (obs report, {} runs)", self.runs.len());
        }
        let mut attributed = 0u64;
        for (id, tracer) in &self.runs {
            match tracer.audit() {
                Ok(sums) => attributed += sums.total_attributed_ns(),
                Err(e) => panic!("trace: conservation audit FAILED for run {id}: {e}"),
            }
        }
        eprintln!(
            "trace: conservation audit OK over {} runs ({} attributed ns)",
            self.runs.len(),
            attributed
        );
        eprint!("{}", self.merged_metrics().render());
    }
}

/// Convenience for untraced grid sweeps outside a session: run `n`
/// units at the given worker count and sequence the errors
/// deterministically.
pub fn run_indexed<T, F>(jobs: usize, n: usize, f: F) -> Result<Vec<T>, XememError>
where
    T: Send,
    F: Fn(usize) -> Result<T, XememError> + Sync,
{
    let driver = RunDriver::new(RunPlan::new(n).with_jobs(jobs));
    driver.execute(|ctx| f(ctx.index)).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_sequence_by_unit_index() {
        let mut session = ParSession::with(4, false);
        let err = session
            .run(16, |i, _| {
                if i % 5 == 3 {
                    Err(XememError::Topology(format!("unit {i}")))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
        assert!(format!("{err:?}").contains("unit 3"), "{err:?}");
    }

    #[test]
    fn traced_session_accumulates_per_run_handles() {
        let mut session = ParSession::with(2, true);
        let out = session
            .run(3, |i, tracer| {
                assert!(tracer.is_enabled());
                Ok(i)
            })
            .unwrap();
        assert_eq!(out, vec![0, 1, 2]);
        let _ = session.run(2, |i, _| Ok::<_, XememError>(i)).unwrap();
        let ids: Vec<u64> = session.traced_runs().iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn untraced_session_hands_out_disabled_tracers() {
        let mut session = ParSession::with(2, false);
        session
            .run(2, |_, tracer| {
                assert!(!tracer.is_enabled());
                Ok(())
            })
            .unwrap();
        assert!(session.traced_runs().is_empty());
    }
}
