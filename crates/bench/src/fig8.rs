//! Fig. 8 — single-node in situ benchmark across enclave configurations.
//!
//! Paper setup: HPCCG (600 iterations, 15 communication points)
//! composed with STREAM over a 512 MB region on a 4-core node, across
//! the four Table 3 enclave configurations × {synchronous,
//! asynchronous} × {one-time, recurring} attachment models; each bar is
//! the mean ± stddev of 10 runs.
//!
//! Expected shape (paper): async beats sync everywhere;
//! Kitten-simulation configurations beat Linux/Linux and have far
//! smaller variance; recurring+synchronous is the worst case for the
//! virtualized analytics configurations; Linux/Linux suffers extra
//! overhead and variance under recurring attachments (page-fault
//! semantics).

use serde::Serialize;
use xemem::{TraceHandle, XememError};
use xemem_sim::stats::Summary;
use xemem_workloads::insitu::{
    run_insitu_traced, AnalyticsEnclave, AttachModel, ExecutionModel, InsituConfig, SimEnclave,
};

/// One bar of the figure.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Bar {
    /// Enclave configuration label (Table 3).
    pub config: &'static str,
    /// Execution model label.
    pub execution: &'static str,
    /// Attachment model label.
    pub attach: &'static str,
    /// Mean completion time of the HPC simulation, seconds.
    pub mean_secs: f64,
    /// Standard deviation across runs, seconds.
    pub stddev_secs: f64,
    /// Runs.
    pub runs: u32,
}

fn label(e: ExecutionModel) -> &'static str {
    match e {
        ExecutionModel::Synchronous => "Synchronous",
        ExecutionModel::Asynchronous => "Asynchronous",
    }
}

fn attach_label(a: AttachModel) -> &'static str {
    match a {
        AttachModel::OneTime => "one-time",
        AttachModel::Recurring => "recurring",
    }
}

/// One bar spec: the attachment model, execution model and Table 3
/// configuration behind one bar of the figure.
pub type BarSpec = (
    AttachModel,
    ExecutionModel,
    SimEnclave,
    AnalyticsEnclave,
    &'static str,
);

/// The figure's bars in output order — the unit list the parallel run
/// driver shards.
pub fn grid() -> Vec<BarSpec> {
    let mut specs = Vec::new();
    for attach in [AttachModel::OneTime, AttachModel::Recurring] {
        for execution in [ExecutionModel::Synchronous, ExecutionModel::Asynchronous] {
            for (sim, ana, name) in InsituConfig::table3() {
                specs.push((attach, execution, sim, ana, name));
            }
        }
    }
    specs
}

/// Run one bar: `runs` repetitions of one configuration. Per-repetition
/// seeds are a pure function of the run index and config name, so bars
/// are independent and scheduling cannot shift any bar's entropy; the
/// bar's charges all land on its own `tracer`.
pub fn run_bar(
    spec: BarSpec,
    runs: u32,
    smoke: bool,
    tracer: &TraceHandle,
) -> Result<Fig8Bar, XememError> {
    let (attach, execution, sim, ana, name) = spec;
    let mut times = Vec::new();
    for run_idx in 0..runs {
        let mut cfg = if smoke {
            InsituConfig::smoke(sim, ana, execution, attach)
        } else {
            InsituConfig::fig8(sim, ana, execution, attach, 0)
        };
        cfg.seed = 0xF16_8000 + run_idx as u64 * 977 + hash_name(name);
        let r = run_insitu_traced(&cfg, tracer)?;
        assert!(r.verified, "data verification failed for {name}");
        times.push(r.sim_completion.as_secs_f64());
    }
    let s = Summary::of(&times);
    Ok(Fig8Bar {
        config: name,
        execution: label(execution),
        attach: attach_label(attach),
        mean_secs: s.mean,
        stddev_secs: s.stddev,
        runs,
    })
}

/// Run the full figure (both panels) with `runs` repetitions per bar.
/// In smoke mode a scaled-down workload is used.
pub fn run(runs: u32, smoke: bool) -> Result<Vec<Fig8Bar>, XememError> {
    grid()
        .into_iter()
        .map(|s| run_bar(s, runs, smoke, &TraceHandle::disabled()))
        .collect()
}

fn hash_name(name: &str) -> u64 {
    name.bytes()
        .fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64))
}

/// The configurations usable for quick assertions in tests.
pub fn find<'a>(bars: &'a [Fig8Bar], config: &str, execution: &str, attach: &str) -> &'a Fig8Bar {
    bars.iter()
        .find(|b| b.config == config && b.execution == execution && b.attach == attach)
        .expect("bar exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_shape_holds() {
        let bars = run(2, true).unwrap();
        assert_eq!(bars.len(), 16);
        // Async ≤ sync for the same config/model (analytics overlap).
        let sync = find(&bars, "Kitten/Linux", "Synchronous", "one-time");
        let asynch = find(&bars, "Kitten/Linux", "Asynchronous", "one-time");
        assert!(asynch.mean_secs < sync.mean_secs);
        // Recurring costs at least as much as one-time for the VM config.
        let rec = find(
            &bars,
            "Kitten/Linux VM (Linux Host)",
            "Synchronous",
            "recurring",
        );
        let one = find(
            &bars,
            "Kitten/Linux VM (Linux Host)",
            "Synchronous",
            "one-time",
        );
        assert!(rec.mean_secs >= one.mean_secs);
    }
}
