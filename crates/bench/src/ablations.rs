//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! * [`memmap`] — the VMM memory-map structure: the paper's red-black
//!   tree vs its proposed radix-tree replacement (§5.4 future work),
//!   each with and without run coalescing.
//! * [`ipi`] — the core-0-restricted IPI handler vs per-channel handlers
//!   (§5.3 future work: "more intelligent mechanisms for interrupt
//!   handling").
//! * [`name_server`] — name-server placement (§3.2: "the name server can
//!   be deployed in any enclave").

use serde::Serialize;
use xemem::{GuestOs, MemoryMapKind, SystemBuilder, TraceHandle, XememError};
use xemem_palacios::Coalescing;
use xemem_sim::stats::throughput_gbps;
use xemem_sim::{SimDuration, SimTime};

/// Result row of the memory-map ablation.
#[derive(Debug, Clone, Serialize)]
pub struct MemmapRow {
    /// Structure + policy label.
    pub variant: &'static str,
    /// Guest attach throughput, GB/s.
    pub gbps: f64,
    /// Memory-map entries after one attachment.
    pub entries: usize,
}

/// The memory-map ablation: a VM attaches to a Kitten-exported region
/// under four memory-map variants.
pub mod memmap {
    use super::*;

    /// The ablation's variants in output order.
    pub const VARIANTS: [(&str, MemoryMapKind, Coalescing); 4] = [
        (
            "rb-tree / per-page (paper)",
            MemoryMapKind::RbTree,
            Coalescing::PerPage,
        ),
        (
            "rb-tree / coalesced runs",
            MemoryMapKind::RbTree,
            Coalescing::Runs,
        ),
        (
            "radix / per-page (future work)",
            MemoryMapKind::Radix,
            Coalescing::PerPage,
        ),
        (
            "radix / coalesced runs",
            MemoryMapKind::Radix,
            Coalescing::Runs,
        ),
    ];

    /// Run with the given region size and attachment count.
    pub fn run(size: u64, iters: u32) -> Result<Vec<MemmapRow>, XememError> {
        (0..VARIANTS.len())
            .map(|v| run_variant(v, size, iters, &TraceHandle::disabled()))
            .collect()
    }

    /// Run one variant (`0..VARIANTS.len()`) — the independent unit the
    /// parallel run driver shards; its charges land on its own `tracer`.
    pub fn run_variant(
        variant: usize,
        size: u64,
        iters: u32,
        tracer: &TraceHandle,
    ) -> Result<MemmapRow, XememError> {
        let (label, kind, coalescing) = VARIANTS[variant];
        let mut sys = SystemBuilder::new()
            .with_tracer(tracer.clone())
            .linux_management("linux", 4, 64 << 20)
            .kitten_cokernel("kitten", 1, size + (64 << 20))
            .palacios_vm("vm", "linux", size / 4 + (96 << 20), kind, GuestOs::Fwk)
            .build()?;
        let vm_ref = sys.enclave_by_name("vm").unwrap();
        sys.vmm_mut(vm_ref).unwrap().set_coalescing(coalescing);
        let kitten = sys.enclave_by_name("kitten").unwrap();
        let exporter = sys.spawn_process(kitten, size + (16 << 20))?;
        let attacher = sys.spawn_process(vm_ref, 8 << 20)?;
        let buf = sys.alloc_buffer(exporter, size)?;
        sys.prepare_buffer(exporter, buf, size)?;
        let segid = sys.xpmem_make(exporter, buf, size, None)?;
        let apid = sys.xpmem_get(attacher, segid)?;
        let mut total = SimDuration::ZERO;
        let mut entries = 0;
        for _ in 0..iters {
            let t0 = sys.clock().now();
            let o = sys.xpmem_attach_outcome(attacher, apid, 0, size)?;
            total += o.end.duration_since(t0);
            entries = sys.vmm_mut(vm_ref).unwrap().map_entries();
            sys.xpmem_detach(attacher, o.va)?;
        }
        Ok(MemmapRow {
            variant: label,
            gbps: throughput_gbps(size * iters as u64, total),
            entries,
        })
    }
}

/// Result row of the IPI ablation.
#[derive(Debug, Clone, Serialize)]
pub struct IpiRow {
    /// Handler placement label.
    pub variant: &'static str,
    /// Mean per-pair throughput, GB/s.
    pub gbps: f64,
    /// Total queueing delay at the shared handler (zero for per-channel).
    pub core0_wait_us: f64,
}

/// The IPI-handler ablation: the Fig. 6 worst case (8 enclaves) with the
/// paper's core-0-restricted handler vs per-channel handlers.
pub mod ipi {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// The ablation's variants in output order.
    pub const VARIANTS: [(&str, bool); 2] = [
        ("core-0 restricted (paper)", false),
        ("per-channel handlers", true),
    ];

    /// Run with the given region size and per-pair attachment count.
    pub fn run(size: u64, iters: u32) -> Result<Vec<IpiRow>, XememError> {
        (0..VARIANTS.len())
            .map(|v| run_variant(v, size, iters, &TraceHandle::disabled()))
            .collect()
    }

    /// Run one variant (`0..VARIANTS.len()`) — the independent unit the
    /// parallel run driver shards; its charges land on its own `tracer`.
    pub fn run_variant(
        variant: usize,
        size: u64,
        iters: u32,
        tracer: &TraceHandle,
    ) -> Result<IpiRow, XememError> {
        let (label, per_channel) = VARIANTS[variant];
        let mut b = SystemBuilder::new()
            .with_tracer(tracer.clone())
            .linux_management("linux", 8, 512 << 20);
        if per_channel {
            b = b.per_channel_ipi();
        }
        for i in 0..8 {
            b = b.kitten_cokernel(&format!("kitten{i}"), 1, size + (64 << 20));
        }
        let mut sys = b.build()?;
        let linux = sys.enclave_by_name("linux").unwrap();
        let mut pairs = Vec::new();
        for i in 0..8 {
            let enclave = sys.enclave_by_name(&format!("kitten{i}")).unwrap();
            let exporter = sys.spawn_process(enclave, size + (16 << 20))?;
            let attacher = sys.spawn_process(linux, 8 << 20)?;
            let buf = sys.alloc_buffer(exporter, size)?;
            let segid = sys.xpmem_make(exporter, buf, size, None)?;
            let apid = sys.xpmem_get(attacher, segid)?;
            pairs.push((attacher, apid, SimDuration::ZERO, iters));
        }
        let t0 = sys.clock().now();
        let mut heap: BinaryHeap<Reverse<(SimTime, usize)>> =
            (0..pairs.len()).map(|i| Reverse((t0, i))).collect();
        while let Some(Reverse((at, idx))) = heap.pop() {
            let (attacher, apid, _, remaining) = pairs[idx];
            if remaining == 0 {
                continue;
            }
            pairs[idx].3 -= 1;
            let o = sys.attach_at(attacher, apid, 0, size, at)?;
            pairs[idx].2 += o.end.duration_since(at);
            let free = sys.detach_at(attacher, o.va, o.end)?;
            heap.push(Reverse((free, idx)));
        }
        let mean = pairs
            .iter()
            .map(|p| throughput_gbps(size * iters as u64, p.2))
            .sum::<f64>()
            / pairs.len() as f64;
        Ok(IpiRow {
            variant: label,
            gbps: mean,
            core0_wait_us: sys.core0().total_wait().as_micros_f64(),
        })
    }
}

/// Result row of the name-server-placement ablation.
#[derive(Debug, Clone, Serialize)]
pub struct NsRow {
    /// Where the name server lives.
    pub placement: &'static str,
    /// Mean `xpmem_make` latency from the Kitten enclave, microseconds.
    pub make_us: f64,
    /// Mean `xpmem_get` latency from the far co-kernel, microseconds.
    pub get_us: f64,
}

/// The name-server-placement ablation: control-operation latency with
/// the server in the management enclave vs in a co-kernel.
pub mod name_server {
    use super::*;

    /// The ablation's placements in output order.
    pub const VARIANTS: [(&str, &str); 2] = [
        ("management enclave (paper default)", "linux"),
        ("co-kernel enclave", "kitten0"),
    ];

    /// Run with `iters` control operations per placement.
    pub fn run(iters: u32) -> Result<Vec<NsRow>, XememError> {
        (0..VARIANTS.len())
            .map(|v| run_variant(v, iters, &TraceHandle::disabled()))
            .collect()
    }

    /// Run one placement (`0..VARIANTS.len()`) — the independent unit
    /// the parallel run driver shards; its charges land on its own
    /// `tracer`.
    pub fn run_variant(
        variant: usize,
        iters: u32,
        tracer: &TraceHandle,
    ) -> Result<NsRow, XememError> {
        let (label, ns_at) = VARIANTS[variant];
        let mut sys = SystemBuilder::new()
            .with_tracer(tracer.clone())
            .linux_management("linux", 4, 128 << 20)
            .kitten_cokernel("kitten0", 1, 64 << 20)
            .kitten_cokernel("kitten1", 1, 64 << 20)
            .name_server_at(ns_at)
            .build()?;
        let k0 = sys.enclave_by_name("kitten0").unwrap();
        let k1 = sys.enclave_by_name("kitten1").unwrap();
        let exporter = sys.spawn_process(k0, 16 << 20)?;
        let getter = sys.spawn_process(k1, 16 << 20)?;
        let buf = sys.alloc_buffer(exporter, 1 << 20)?;
        let mut make_total = SimDuration::ZERO;
        let mut get_total = SimDuration::ZERO;
        for _ in 0..iters {
            let t0 = sys.clock().now();
            let segid = sys.xpmem_make(exporter, buf, 1 << 20, None)?;
            make_total += sys.clock().now().duration_since(t0);
            let t1 = sys.clock().now();
            let apid = sys.xpmem_get(getter, segid)?;
            get_total += sys.clock().now().duration_since(t1);
            sys.xpmem_release(getter, apid)?;
            sys.xpmem_remove(exporter, segid)?;
        }
        Ok(NsRow {
            placement: label,
            make_us: make_total.as_micros_f64() / iters as f64,
            get_us: get_total.as_micros_f64() / iters as f64,
        })
    }
}

/// Result row of the NUMA-placement ablation.
#[derive(Debug, Clone, Serialize)]
pub struct NumaRow {
    /// Placement label.
    pub placement: &'static str,
    /// Attach throughput, GB/s.
    pub attach_gbps: f64,
    /// Attach + read throughput, GB/s.
    pub attach_read_gbps: f64,
}

/// The NUMA-placement ablation: the paper pins every enclave to a single
/// socket (§5.1) — this quantifies what happens when the exporter and
/// attacher live on different sockets.
pub mod numa {
    use super::*;
    use xemem_sim::CostModel;

    /// The ablation's placements in output order.
    pub const VARIANTS: [(&str, u32); 2] = [("same socket (paper setup)", 0), ("cross socket", 1)];

    /// Run with the given region size and attachment count.
    pub fn run(size: u64, iters: u32) -> Result<Vec<NumaRow>, XememError> {
        (0..VARIANTS.len())
            .map(|v| run_variant(v, size, iters, &TraceHandle::disabled()))
            .collect()
    }

    /// Run one placement (`0..VARIANTS.len()`) — the independent unit
    /// the parallel run driver shards; its charges land on its own
    /// `tracer`.
    pub fn run_variant(
        variant: usize,
        size: u64,
        iters: u32,
        tracer: &TraceHandle,
    ) -> Result<NumaRow, XememError> {
        let cost = CostModel::default();
        let (label, kitten_zone) = VARIANTS[variant];
        // Size the node explicitly: even zone split must leave room
        // for whichever zone hosts both enclaves.
        let mut sys = SystemBuilder::new()
            .with_tracer(tracer.clone())
            .with_cost(cost.clone())
            .numa_zones(2)
            .with_node(8, 4 * (size + (256 << 20)))
            .on_zone(0)
            .linux_management("linux", 4, size + (128 << 20))
            .on_zone(kitten_zone)
            .kitten_cokernel("kitten", 1, size + (64 << 20))
            .build()?;
        let kitten = sys.enclave_by_name("kitten").unwrap();
        let linux = sys.enclave_by_name("linux").unwrap();
        assert_eq!(sys.enclave_zone(kitten), Some(kitten_zone));
        let exporter = sys.spawn_process(kitten, size + (16 << 20))?;
        let attacher = sys.spawn_process(linux, 8 << 20)?;
        let buf = sys.alloc_buffer(exporter, size)?;
        sys.prepare_buffer(exporter, buf, size)?;
        let segid = sys.xpmem_make(exporter, buf, size, None)?;
        let apid = sys.xpmem_get(attacher, segid)?;
        let mut attach_total = SimDuration::ZERO;
        for _ in 0..iters {
            let t0 = sys.clock().now();
            let o = sys.xpmem_attach_outcome(attacher, apid, 0, size)?;
            attach_total += o.end.duration_since(t0);
            sys.xpmem_detach(attacher, o.va)?;
        }
        // Reads of remote-socket memory run at reduced bandwidth.
        let read_each = if kitten_zone == 0 {
            cost.attached_read(size)
        } else {
            cost.attached_read(size)
                .scaled(1.0 / cost.numa_remote_bw_factor)
        };
        let read_total = attach_total + read_each.times(iters as u64);
        Ok(NumaRow {
            placement: label,
            attach_gbps: throughput_gbps(size * iters as u64, attach_total),
            attach_read_gbps: throughput_gbps(size * iters as u64, read_total),
        })
    }
}

/// Result row of the huge-page attachment ablation.
#[derive(Debug, Clone, Serialize)]
pub struct HugepageRow {
    /// Mapping granularity label.
    pub variant: &'static str,
    /// Attach throughput, GB/s.
    pub gbps: f64,
}

/// Huge-page attachment mapping (extension beyond the paper): LWK
/// exports are physically contiguous, so the FWK attacher can install
/// 2 MiB leaves instead of one PTE per page — collapsing the dominant
/// `remap_pfn_range` cost of the Fig. 5 pipeline.
pub mod hugepages {
    use super::*;

    /// The ablation's variants in output order.
    pub const VARIANTS: [(&str, bool); 2] = [
        ("4 KiB PTEs (paper)", false),
        ("2 MiB leaves (extension)", true),
    ];

    /// Run with the given region size and attachment count.
    pub fn run(size: u64, iters: u32) -> Result<Vec<HugepageRow>, XememError> {
        (0..VARIANTS.len())
            .map(|v| run_variant(v, size, iters, &TraceHandle::disabled()))
            .collect()
    }

    /// Run one variant (`0..VARIANTS.len()`) — the independent unit the
    /// parallel run driver shards; its charges land on its own `tracer`.
    pub fn run_variant(
        variant: usize,
        size: u64,
        iters: u32,
        tracer: &TraceHandle,
    ) -> Result<HugepageRow, XememError> {
        let (label, huge) = VARIANTS[variant];
        let mut b = SystemBuilder::new()
            .with_tracer(tracer.clone())
            .linux_management("linux", 4, 128 << 20)
            .kitten_cokernel("kitten", 1, size + (64 << 20));
        if huge {
            b = b.hugepage_attach();
        }
        let mut sys = b.build()?;
        let kitten = sys.enclave_by_name("kitten").unwrap();
        let linux = sys.enclave_by_name("linux").unwrap();
        let exporter = sys.spawn_process(kitten, size + (16 << 20))?;
        let attacher = sys.spawn_process(linux, 8 << 20)?;
        let buf = sys.alloc_buffer(exporter, size)?;
        sys.prepare_buffer(exporter, buf, size)?;
        let segid = sys.xpmem_make(exporter, buf, size, None)?;
        let apid = sys.xpmem_get(attacher, segid)?;
        let mut total = SimDuration::ZERO;
        for _ in 0..iters {
            let t0 = sys.clock().now();
            let o = sys.xpmem_attach_outcome(attacher, apid, 0, size)?;
            total += o.end.duration_since(t0);
            sys.xpmem_detach(attacher, o.va)?;
        }
        Ok(HugepageRow {
            variant: label,
            gbps: throughput_gbps(size * iters as u64, total),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memmap_radix_beats_rb_and_coalescing_beats_both() {
        let rows = memmap::run(8 << 20, 3).unwrap();
        let find = |v: &str| rows.iter().find(|r| r.variant.starts_with(v)).unwrap();
        let rb = find("rb-tree / per-page");
        let radix = find("radix / per-page");
        let rb_runs = find("rb-tree / coalesced");
        assert!(
            radix.gbps > rb.gbps,
            "radix {} !> rb {}",
            radix.gbps,
            rb.gbps
        );
        assert!(rb_runs.gbps > rb.gbps);
        // Contiguous LWK exports collapse to a single coalesced entry
        // (plus the RAM entry).
        assert_eq!(rb_runs.entries, 2);
        assert!(rb.entries > 1000);
    }

    #[test]
    fn hugepage_mapping_lifts_attach_throughput() {
        let rows = hugepages::run(16 << 20, 3).unwrap();
        assert!(
            rows[1].gbps > 2.0 * rows[0].gbps,
            "huge {} vs base {}",
            rows[1].gbps,
            rows[0].gbps
        );
    }

    #[test]
    fn cross_socket_placement_is_slower() {
        let rows = numa::run(8 << 20, 3).unwrap();
        assert!(rows[1].attach_gbps < rows[0].attach_gbps * 0.8);
        assert!(rows[1].attach_read_gbps < rows[0].attach_read_gbps);
    }

    #[test]
    fn per_channel_ipi_removes_core0_wait() {
        let rows = ipi::run(4 << 20, 4).unwrap();
        let shared = &rows[0];
        let per_channel = &rows[1];
        assert!(shared.core0_wait_us > 0.0);
        assert!(per_channel.gbps >= shared.gbps);
    }

    #[test]
    fn ns_placement_changes_latency_profile() {
        let rows = name_server::run(5).unwrap();
        assert_eq!(rows.len(), 2);
        // With the NS in kitten0, kitten0's own makes become local
        // (cheap), while cross-enclave gets still pay routing.
        let cokernel = &rows[1];
        let mgmt = &rows[0];
        assert!(cokernel.make_us < mgmt.make_us);
    }
}
