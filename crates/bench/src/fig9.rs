//! Fig. 9 — multi-node in situ benchmark, weak scaling.
//!
//! Paper setup: 1–8 nodes; each node runs the in situ pair with either
//! both components in native Linux ("Linux Only") or the simulation in a
//! Palacios VM on an isolated Kitten co-kernel host ("Multi Enclave").
//! HPCCG runs 300 iterations with 10 communication points over a 1 GB
//! region per node, asynchronous workflow, weak scaling; each point is
//! the mean ± stddev of 5 runs.
//!
//! Expected shape (paper): Linux-only degrades steadily with node count
//! (noise coupling at collectives) while multi-enclave stays nearly flat
//! past 2 nodes despite running the simulation *virtualized*; with
//! recurring attachments the Linux-only configuration wins at one node
//! but loses at scale.

use serde::Serialize;
use xemem::{TraceHandle, XememError};
use xemem_cluster::{run_cluster_traced, ClusterConfig, NodeConfig};
use xemem_sim::stats::Summary;
use xemem_workloads::insitu::AttachModel;

/// One (nodes, config) point of the figure.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Point {
    /// Node count.
    pub nodes: u32,
    /// Configuration label.
    pub config: &'static str,
    /// Attachment model label.
    pub attach: &'static str,
    /// Mean completion time, seconds.
    pub mean_secs: f64,
    /// Standard deviation, seconds.
    pub stddev_secs: f64,
    /// Runs.
    pub runs: u32,
}

fn config_label(c: NodeConfig) -> &'static str {
    match c {
        NodeConfig::LinuxOnly => "Linux Only",
        NodeConfig::MultiEnclave => "Multi Enclave",
    }
}

/// One point spec: attachment model, node configuration and node count.
pub type PointSpec = (AttachModel, NodeConfig, u32);

/// The figure's points in output order — the unit list the parallel
/// run driver shards.
pub fn grid(node_counts: &[u32]) -> Vec<PointSpec> {
    let mut specs = Vec::new();
    for attach in [AttachModel::OneTime, AttachModel::Recurring] {
        for config in [NodeConfig::LinuxOnly, NodeConfig::MultiEnclave] {
            for &nodes in node_counts {
                specs.push((attach, config, nodes));
            }
        }
    }
    specs
}

/// Run one point: `runs` repetitions of one cluster configuration.
/// Per-repetition seeds are a pure function of run index and node
/// count, so points are independent units; the point's charges all
/// land on its own `tracer`.
pub fn run_point(
    spec: PointSpec,
    runs: u32,
    smoke: bool,
    tracer: &TraceHandle,
) -> Result<Fig9Point, XememError> {
    let (attach, config, nodes) = spec;
    let mut times = Vec::new();
    for run_idx in 0..runs {
        let mut cfg = if smoke {
            ClusterConfig::smoke(nodes, config, attach)
        } else {
            ClusterConfig::fig9(nodes, config, attach, 0)
        };
        cfg.seed = 0xF19_0000 + run_idx as u64 * 1009 + nodes as u64 * 131;
        let r = run_cluster_traced(&cfg, tracer)?;
        assert!(r.verified, "node verification failed");
        times.push(r.completion.as_secs_f64());
    }
    let s = Summary::of(&times);
    Ok(Fig9Point {
        nodes,
        config: config_label(config),
        attach: match attach {
            AttachModel::OneTime => "one-time",
            AttachModel::Recurring => "recurring",
        },
        mean_secs: s.mean,
        stddev_secs: s.stddev,
        runs,
    })
}

/// Run both panels over the given node counts.
pub fn run(node_counts: &[u32], runs: u32, smoke: bool) -> Result<Vec<Fig9Point>, XememError> {
    grid(node_counts)
        .into_iter()
        .map(|s| run_point(s, runs, smoke, &TraceHandle::disabled()))
        .collect()
}

/// Find a point for assertions.
pub fn find<'a>(points: &'a [Fig9Point], nodes: u32, config: &str, attach: &str) -> &'a Fig9Point {
    points
        .iter()
        .find(|p| p.nodes == nodes && p.config == config && p.attach == attach)
        .expect("point exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_all_points() {
        let points = run(&[1, 2], 2, true).unwrap();
        assert_eq!(points.len(), 8);
        for p in &points {
            assert!(p.mean_secs > 0.0);
        }
    }
}
