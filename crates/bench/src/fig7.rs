//! Fig. 7 — noise profile of a Kitten enclave serving XEMEM attachments.
//!
//! Paper setup: a single-core Kitten enclave exports regions of 4 KB,
//! 2 MB and 1 GB; a Linux process attaches to each region, sleeps one
//! second, and repeats for 10 seconds, while Selfish Detour runs on the
//! Kitten core. Expected bands: dense ~12 µs hardware detours, sparse
//! ~100 µs SMIs, 4 KB attachments invisible, 2 MB attachments ~45 µs,
//! and 1 GB attachments two orders of magnitude above everything else
//! (~23.2–23.8 ms).

use serde::Serialize;
use xemem::{SystemBuilder, TraceHandle, XememError};
use xemem_sim::noise::{CompositeNoise, NoiseEvent, NoiseKind, ScheduledNoise};
use xemem_sim::{SimDuration, SimRng, SimTime};
use xemem_workloads::detour::SelfishDetour;

/// One detour observation.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Sample {
    /// Seconds since the window began.
    pub t_secs: f64,
    /// Detour duration in microseconds.
    pub detour_us: f64,
    /// Cause label.
    pub kind: String,
}

/// The profile for one exported-region size.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Series {
    /// Exported region size in bytes.
    pub region: u64,
    /// All detours observed in the window.
    pub samples: Vec<Fig7Sample>,
}

/// Run the experiment: for each region size, 10 attachments spaced one
/// second apart over a 10 s window (scaled down in smoke mode).
pub fn run(regions: &[u64], window_secs: u64, seed: u64) -> Result<Vec<Fig7Series>, XememError> {
    regions
        .iter()
        .map(|&r| run_region(r, window_secs, seed, &TraceHandle::disabled()))
        .collect()
}

/// One region's profile — the independent unit the parallel run driver
/// shards. The noise RNG is seeded from `seed` per region (as the
/// serial sweep always did), so concurrent regions share no state; the
/// unit's charges all land on its own `tracer`.
pub fn run_region(
    region: u64,
    window_secs: u64,
    seed: u64,
    tracer: &TraceHandle,
) -> Result<Fig7Series, XememError> {
    let mut sys = SystemBuilder::new()
        .with_tracer(tracer.clone())
        .linux_management("linux", 4, 64 << 20)
        .kitten_cokernel("kitten", 1, region + (64 << 20))
        .build()?;
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let exporter = sys.spawn_process(kitten, region + (16 << 20))?;
    let attacher = sys.spawn_process(linux, 8 << 20)?;
    let buf = sys.alloc_buffer(exporter, region)?;
    sys.prepare_buffer(exporter, buf, region)?;
    let segid = sys.xpmem_make(exporter, buf, region, None)?;
    let apid = sys.xpmem_get(attacher, segid)?;

    // One attachment per second; the serve (page-table walk) occupies
    // the Kitten core and is injected as an AttachService detour.
    let mut injected = Vec::new();
    for sec in 0..window_secs {
        let at = SimTime::from_nanos(sec * 1_000_000_000 + 137_000_000);
        let outcome = sys.attach_at(attacher, apid, 0, region, at)?;
        injected.push(NoiseEvent {
            start: at + outcome.route_request,
            duration: outcome.serve,
            kind: NoiseKind::AttachService,
        });
        sys.detach_at(attacher, outcome.va, outcome.end)?;
    }

    let mut rng = SimRng::seed_from_u64(seed);
    let mut noise = CompositeNoise::new(vec![
        Box::new(CompositeNoise::kitten(&mut rng)),
        Box::new(ScheduledNoise::new(injected)),
    ]);
    let detours = SelfishDetour::default().run(
        &mut noise,
        SimTime::ZERO,
        SimDuration::from_secs(window_secs),
    );
    let samples = detours
        .iter()
        .map(|d| Fig7Sample {
            t_secs: d.at.as_secs_f64(),
            detour_us: d.duration.as_micros_f64(),
            kind: format!("{:?}", d.kind),
        })
        .collect();
    Ok(Fig7Series { region, samples })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attachment_detours_scale_with_region() {
        let series = run(&[4 << 10, 2 << 20, 64 << 20], 4, 11).unwrap();
        let max_attach = |s: &Fig7Series| {
            s.samples
                .iter()
                .filter(|x| x.kind == "AttachService")
                .map(|x| x.detour_us)
                .fold(0.0f64, f64::max)
        };
        // 4 KB attachments vanish below the noise floor (sub-µs walk).
        assert_eq!(
            max_attach(&series[0]),
            0.0,
            "4 KB detours should be invisible"
        );
        // 2 MB ⇒ ~45 µs band.
        let two_mb = max_attach(&series[1]);
        assert!((20.0..90.0).contains(&two_mb), "2 MB detour {two_mb} µs");
        // 64 MB (smoke stand-in for 1 GB) ⇒ ~1.4 ms, far above SMIs.
        let big = max_attach(&series[2]);
        assert!(big > 1000.0, "64 MB detour {big} µs");
        // Baseline bands still present.
        assert!(series[2].samples.iter().any(|s| s.kind == "Hardware"));
    }
}
