//! Table 2 — cross-enclave throughput with virtual machines.
//!
//! Three rows, each ≥ 500 attachments to a 1 GB region in the paper:
//!
//! | exporting | attaching | paper GB/s (w/o rb-tree inserts) |
//! |---|---|---|
//! | Kitten | Linux | 12.841 (N/A) |
//! | Kitten | Linux (VM) | 3.991 (8.79) |
//! | Linux (VM) | Kitten | 12.606 (N/A) |
//!
//! The VM row's penalty must *emerge* from red-black-tree inserts into
//! the Palacios memory map; removing structure time recovers the
//! parenthesized number.

use serde::Serialize;
use xemem::{GuestOs, MemoryMapKind, SystemBuilder, TraceHandle, XememError};
use xemem_sim::stats::throughput_gbps;
use xemem_sim::{SimDuration, SimTime};

/// One row of the table.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Exporting enclave label.
    pub exporting: &'static str,
    /// Attaching enclave label.
    pub attaching: &'static str,
    /// Measured throughput, GB/s.
    pub gbps: f64,
    /// Throughput with memory-map structure time removed (VM rows only).
    pub gbps_without_rb: Option<f64>,
    /// Fraction of attach time spent updating the guest memory map (VM
    /// rows only; the paper reports ~80%).
    pub map_update_fraction: Option<f64>,
}

/// Number of rows in the table (the independent units the parallel run
/// driver shards).
pub const ROWS: usize = 3;

/// Run all three rows with `iters` attachments of `size` bytes each.
pub fn run(size: u64, iters: u32) -> Result<Vec<Table2Row>, XememError> {
    run_with(size, iters, &TraceHandle::disabled())
}

/// [`run`] with an explicit tracer; each row's system is audited
/// against its own clock elapsed time.
pub fn run_with(size: u64, iters: u32, tracer: &TraceHandle) -> Result<Vec<Table2Row>, XememError> {
    (0..ROWS).map(|r| run_row(r, size, iters, tracer)).collect()
}

/// Run one row (`0..ROWS`) in isolation: each row builds its own
/// system, so rows are independent units.
pub fn run_row(
    row: usize,
    size: u64,
    iters: u32,
    tracer: &TraceHandle,
) -> Result<Table2Row, XememError> {
    let scope = tracer.scope();
    let audit = |sys: &xemem::System| {
        if tracer.is_enabled() {
            let elapsed = sys.clock().now().duration_since(SimTime::ZERO);
            tracer
                .audit_scope(&scope, Some(elapsed))
                .unwrap_or_else(|e| panic!("table2 row{row} conservation audit: {e}"));
        }
    };

    match row {
        // Row 0: Kitten exports, native Linux attaches.
        0 => {
            let mut sys = SystemBuilder::new()
                .with_tracer(tracer.clone())
                .linux_management("linux", 4, 128 << 20)
                .kitten_cokernel("kitten", 1, size + (64 << 20))
                .build()?;
            let kitten = sys.enclave_by_name("kitten").unwrap();
            let linux = sys.enclave_by_name("linux").unwrap();
            let exporter = sys.spawn_process(kitten, size + (16 << 20))?;
            let attacher = sys.spawn_process(linux, 8 << 20)?;
            let buf = sys.alloc_buffer(exporter, size)?;
            sys.prepare_buffer(exporter, buf, size)?;
            let segid = sys.xpmem_make(exporter, buf, size, None)?;
            let apid = sys.xpmem_get(attacher, segid)?;
            let mut total = SimDuration::ZERO;
            for _ in 0..iters {
                let t0 = sys.clock().now();
                let o = sys.xpmem_attach_outcome(attacher, apid, 0, size)?;
                total += o.end.duration_since(t0);
                sys.xpmem_detach(attacher, o.va)?;
            }
            audit(&sys);
            Ok(Table2Row {
                exporting: "Kitten",
                attaching: "Linux",
                gbps: throughput_gbps(size * iters as u64, total),
                gbps_without_rb: None,
                map_update_fraction: None,
            })
        }

        // Row 1: Kitten exports, a Linux VM on the Linux host attaches.
        1 => {
            let mut sys = SystemBuilder::new()
                .with_tracer(tracer.clone())
                .linux_management("linux", 4, 64 << 20)
                .kitten_cokernel("kitten", 1, size + (64 << 20))
                .palacios_vm(
                    "vm",
                    "linux",
                    size / 4 + (96 << 20),
                    MemoryMapKind::RbTree,
                    GuestOs::Fwk,
                )
                .build()?;
            let kitten = sys.enclave_by_name("kitten").unwrap();
            let vm = sys.enclave_by_name("vm").unwrap();
            let exporter = sys.spawn_process(kitten, size + (16 << 20))?;
            let attacher = sys.spawn_process(vm, 8 << 20)?;
            let buf = sys.alloc_buffer(exporter, size)?;
            sys.prepare_buffer(exporter, buf, size)?;
            let segid = sys.xpmem_make(exporter, buf, size, None)?;
            let apid = sys.xpmem_get(attacher, segid)?;
            let mut total = SimDuration::ZERO;
            let mut without_rb = SimDuration::ZERO;
            let mut frac_sum = 0.0;
            for _ in 0..iters {
                let t0 = sys.clock().now();
                let o = sys.xpmem_attach_outcome(attacher, apid, 0, size)?;
                let elapsed = o.end.duration_since(t0);
                total += elapsed;
                let breakdown = sys.last_vm_breakdown().expect("VM attach recorded");
                without_rb += elapsed - breakdown.map_structure;
                frac_sum += breakdown.map_update_fraction();
                sys.xpmem_detach(attacher, o.va)?;
            }
            audit(&sys);
            Ok(Table2Row {
                exporting: "Kitten",
                attaching: "Linux (VM)",
                gbps: throughput_gbps(size * iters as u64, total),
                gbps_without_rb: Some(throughput_gbps(size * iters as u64, without_rb)),
                map_update_fraction: Some(frac_sum / iters as f64),
            })
        }

        // Row 2: a Linux VM exports, Kitten attaches (Fig. 4(b) direction).
        2 => {
            let mut sys = SystemBuilder::new()
                .with_tracer(tracer.clone())
                .linux_management("linux", 4, 64 << 20)
                .kitten_cokernel("kitten", 1, size + (64 << 20))
                .palacios_vm(
                    "vm",
                    "linux",
                    size + (96 << 20),
                    MemoryMapKind::RbTree,
                    GuestOs::Fwk,
                )
                .build()?;
            let kitten = sys.enclave_by_name("kitten").unwrap();
            let vm = sys.enclave_by_name("vm").unwrap();
            let exporter = sys.spawn_process(vm, size + (16 << 20))?;
            let attacher = sys.spawn_process(kitten, 8 << 20)?;
            let buf = sys.alloc_buffer(exporter, size)?;
            sys.prepare_buffer(exporter, buf, size)?;
            let segid = sys.xpmem_make(exporter, buf, size, None)?;
            let apid = sys.xpmem_get(attacher, segid)?;
            let mut total = SimDuration::ZERO;
            for _ in 0..iters {
                let t0 = sys.clock().now();
                let o = sys.xpmem_attach_outcome(attacher, apid, 0, size)?;
                total += o.end.duration_since(t0);
                sys.xpmem_detach(attacher, o.va)?;
            }
            audit(&sys);
            Ok(Table2Row {
                exporting: "Linux (VM)",
                attaching: "Kitten",
                gbps: throughput_gbps(size * iters as u64, total),
                gbps_without_rb: None,
                map_update_fraction: None,
            })
        }

        _ => unreachable!("table2 has {ROWS} rows"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_shape_holds() {
        let rows = run(16 << 20, 3).unwrap();
        assert_eq!(rows.len(), 3);
        let native = rows[0].gbps;
        let vm = rows[1].gbps;
        let vm_norb = rows[1].gbps_without_rb.unwrap();
        let guest_export = rows[2].gbps;
        // The VM attach penalty: roughly 2.5–4x below native.
        assert!(vm < native / 2.2, "vm {vm} vs native {native}");
        // Removing rb time recovers about 2x.
        assert!(vm_norb > 1.6 * vm, "norb {vm_norb} vs vm {vm}");
        // Guest-to-host exports stay near native speed.
        assert!(guest_export > native * 0.75, "guest export {guest_export}");
        // Map updates dominate the VM attach (paper: ~80%).
        let frac = rows[1].map_update_fraction.unwrap();
        assert!((0.5..0.95).contains(&frac), "fraction {frac}");
    }
}
