//! Name-service scaling figure — lookup latency vs shard count vs
//! outage rate.
//!
//! The paper's single name server (§3.1) is this repo's last global
//! bottleneck; the sharded, replicated service spreads the namespace
//! over N consistent-hashed shards with leases absorbing repeat
//! lookups. This figure quantifies what that buys under fire: for each
//! (shard count, outage rate) cell, independent node sessions run a
//! dense lookup stream while shard-scoped outages land mid-stream, and
//! the per-lookup virtual-time latencies are pooled into p50/p99.
//!
//! Expected shape: p50 is the steady routed-lookup cost — flat across
//! outage rates, slightly higher for the replicated service than for
//! the centralized one (routing plus replication bookkeeping). p99
//! carries the outage tail: when a lookup lands on a dead shard it
//! backs off until the outage lifts, so its latency is the outage's
//! remaining duration. With one shard every outage stalls the very
//! next lookup for close to its full length; with eight, a given
//! outage only hurts if some lookup needs that one shard before it
//! lifts — many never get hit at all, and the ones that do have less
//! of the window left. p99 therefore climbs with outage rate and falls
//! back toward the baseline as shards are added, which is the point of
//! sharding the service.
//!
//! Every unit is seeded from the root seed and its unit index, so the
//! output is bit-identical at any `--jobs`.

use serde::Serialize;
use xemem::{FaultPlan, SystemBuilder, XememError};
use xemem_sim::stats::quantile;
use xemem_sim::{split_seed, SimDuration, SimRng, SimTime};

/// Shard counts swept (the paper's centralized server is the 1 column).
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Shard-scoped outages injected per unit.
pub const OUTAGE_RATES: [usize; 3] = [0, 6, 18];
/// Root seed for the whole figure.
pub const ROOT_SEED: u64 = 0x5CA1_AB1E;

/// Virtual time at which the measured stream starts. Building the
/// topology, registering it with the name service and spawning the
/// workload all charge virtual time (about 6 ms for 24 enclaves), so
/// the fault window is anchored past setup — otherwise every outage
/// would expire before the first measured lookup.
const BASE_NS: u64 = 8_000_000; // 8 ms
/// Outages land uniformly inside this window after [`BASE_NS`]. The
/// slowest-setup cell still streams lookups past 2.9 ms, so every
/// injected outage overlaps the measured stream in every cell.
const OUTAGE_WINDOW_NS: u64 = 2_500_000;
/// Each injected outage lasts 30–120 µs — long enough to stall a
/// lookup visibly, short enough that the retry budget always rides it
/// out (so `unavailable` staying 0 is part of the figure's contract).
const OUTAGE_MIN_NS: u64 = 30_000;
const OUTAGE_MAX_NS: u64 = 120_000;

/// One (shard count, outage rate) cell of the figure.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingCell {
    /// Name-service shards (each with 2 replicas).
    pub shards: usize,
    /// Shard-scoped outages injected per unit.
    pub outages: usize,
    /// Successful lookups pooled across the cell's units.
    pub lookups: u64,
    /// Lookups that exhausted the retry budget.
    pub unavailable: u64,
    /// Median lookup latency, microseconds of virtual time.
    pub p50_us: f64,
    /// 99th-percentile lookup latency, microseconds of virtual time.
    pub p99_us: f64,
}

/// Raw outcome of one independent unit (one simulated node session).
#[derive(Debug, Clone)]
pub struct UnitOutcome {
    /// Per-lookup virtual-time latencies, nanoseconds, in issue order.
    pub latencies_ns: Vec<u64>,
    /// Lookups that failed with `NameServerUnavailable`.
    pub unavailable: u64,
}

/// Number of co-kernel enclaves per unit (plus the management
/// enclave): 16 replica slots at the widest sweep point plus 8 worker
/// enclaves.
pub fn unit_enclaves(_smoke: bool) -> usize {
    24
}

/// Units per cell.
pub fn units_per_cell(smoke: bool) -> usize {
    if smoke {
        2
    } else {
        8
    }
}

/// Run one unit: `shards` × 2 replicas, `outages` shard-scoped outages
/// over the post-setup window, and a lookup-heavy workload whose
/// per-search latencies are returned in issue order. `seed` must
/// already be split per unit.
pub fn run_unit(
    shards: usize,
    outages: usize,
    seed: u64,
    smoke: bool,
) -> Result<UnitOutcome, XememError> {
    let kittens = unit_enclaves(smoke);
    let mut rng = SimRng::seed_from_u64(seed);
    let mut plan = FaultPlan::new();
    for _ in 0..outages {
        let at =
            SimTime::from_nanos(BASE_NS + rng.uniform_u64(OUTAGE_WINDOW_NS / 25, OUTAGE_WINDOW_NS));
        let dur = SimDuration::from_nanos(rng.uniform_u64(OUTAGE_MIN_NS, OUTAGE_MAX_NS));
        let shard = rng.uniform_u64(0, shards as u64) as usize;
        plan = if shards > 1 {
            plan.name_server_shard_outage(at, shard, dur)
        } else {
            plan.name_server_outage(at, dur)
        };
    }

    // A Kitten process image is text+data+stack (12 MiB) plus heap,
    // physically contiguous; each worker enclave hosts an exporter, and
    // the first four also host a consumer.
    const MIB: u64 = 1 << 20;
    let mut b = SystemBuilder::new().linux_management("linux", 4, 64 * MIB);
    for i in 0..kittens {
        b = b.kitten_cokernel(&format!("k{i}"), 1, 32 * MIB);
    }
    let mut sys = b
        .name_service_shards(shards, 2)
        .with_fault_plan(plan, seed)
        .build()?;

    // Exporters live outside the replica slots so outages never take a
    // workload process with them; 8 exporters × 4 names = 32 keys
    // spread over every shard by the hash ring.
    let first_free = (2 * shards).max(1);
    let mut names = Vec::new();
    let mut consumers = Vec::new();
    for w in 0..8usize {
        let slot = first_free + w;
        let enc = sys.enclave_by_name(&format!("k{}", slot - 1)).unwrap();
        let exporter = sys.spawn_process(enc, MIB)?;
        if w < 4 {
            consumers.push(sys.spawn_process(enc, MIB)?);
        }
        for n in 0..4 {
            let buf = sys.alloc_buffer(exporter, 64 * 1024)?;
            let name = format!("u{seed:016x}:{w}:{n}");
            sys.xpmem_make(exporter, buf, 64 * 1024, Some(&name))?;
            names.push(name);
        }
    }

    // Anchor the measured stream at the fault window's base. Setup cost
    // is deterministic per cell shape and comfortably below the base.
    debug_assert!(
        sys.clock().now().as_nanos() <= BASE_NS,
        "setup ran past the fault-window base"
    );
    if sys.clock().now() < SimTime::from_nanos(BASE_NS) {
        sys.clock().advance_to(SimTime::from_nanos(BASE_NS));
    }

    // The lookup stream itself drives the clock: each consumer walks a
    // rotating window of the key space with no idle gaps, so injected
    // outages always land inside live lookup traffic. Windows shift by
    // one name per round and rounds outlast the lease term, so every
    // measured lookup is a routed one (lease serves are exercised and
    // measured by the chaos suite; here they would only thin the
    // stream).
    let rounds: u64 = if smoke { 4 } else { 10 };
    let mut latencies = Vec::new();
    let mut unavailable = 0u64;
    for round in 0..rounds {
        for (c, &consumer) in consumers.iter().enumerate() {
            for k in 0..12usize {
                let name = &names[(c * 12 + k + round as usize) % names.len()];
                let t0 = sys.clock().now();
                match sys.xpmem_search(consumer, name) {
                    Ok(_) => {
                        latencies.push(sys.clock().now().duration_since(t0).as_nanos());
                    }
                    Err(XememError::NameServerUnavailable { .. }) => unavailable += 1,
                    Err(e) => return Err(e),
                }
            }
        }
    }
    Ok(UnitOutcome {
        latencies_ns: latencies,
        unavailable,
    })
}

/// Pool unit outcomes (in unit order) into one figure cell.
pub fn pool(shards: usize, outages: usize, units: &[UnitOutcome]) -> ScalingCell {
    let mut xs: Vec<f64> = Vec::new();
    let mut unavailable = 0u64;
    for u in units {
        xs.extend(u.latencies_ns.iter().map(|&ns| ns as f64 / 1_000.0));
        unavailable += u.unavailable;
    }
    ScalingCell {
        shards,
        outages,
        lookups: xs.len() as u64,
        unavailable,
        p50_us: quantile(&xs, 0.50).unwrap_or(0.0),
        p99_us: quantile(&xs, 0.99).unwrap_or(0.0),
    }
}

/// The full grid in output order, flattened for the run driver: unit
/// index `i` maps to cell `i / units_per_cell` and intra-cell unit
/// `i % units_per_cell`, and its seed is split from [`ROOT_SEED`] —
/// never from scheduling.
pub fn grid() -> Vec<(usize, usize)> {
    let mut cells = Vec::new();
    for &s in &SHARD_COUNTS {
        for &o in &OUTAGE_RATES {
            cells.push((s, o));
        }
    }
    cells
}

/// Run the whole figure at the given worker count.
pub fn run(jobs: usize, smoke: bool) -> Result<Vec<ScalingCell>, XememError> {
    let cells = grid();
    let per = units_per_cell(smoke);
    let outcomes = crate::driver::run_indexed(jobs, cells.len() * per, |i| {
        let (shards, outages) = cells[i / per];
        run_unit(shards, outages, split_seed(ROOT_SEED, i as u64), smoke)
    })?;
    Ok(cells
        .iter()
        .enumerate()
        .map(|(c, &(s, o))| pool(s, o, &outcomes[c * per..(c + 1) * per]))
        .collect())
}
