//! # xemem-suite
//!
//! Umbrella crate for the XEMEM reproduction workspace: re-exports every
//! member crate and hosts the cross-crate integration tests (`tests/`)
//! and the runnable examples (`examples/`).
//!
//! Start with [`xemem`] (the paper's contribution) and the README.

pub use xemem;
pub use xemem_cluster;
pub use xemem_collections;
pub use xemem_fwk;
pub use xemem_kitten;
pub use xemem_mem;
pub use xemem_palacios;
pub use xemem_pisces;
pub use xemem_rdma;
pub use xemem_sim;
pub use xemem_workloads;
