//! Property tests for the memory-tier layer.
//!
//! The headline theorem, 256 random schedules strong: when hysteresis
//! disables the migration policy, a run that ticks the policy at
//! random points is *observationally equivalent* to a run that never
//! ticks at all — same read bytes, same op tallies, same final clock,
//! same free-frame books, bit-identical metrics snapshot, equal
//! audited conservation sums. A disarmed policy must be free: no span,
//! no surcharge, no clock motion, no counter.
//!
//! A second property pins determinism of the armed policy: the same
//! seed replayed through the same armed schedule produces identical
//! migrations, placements and clocks.

use proptest::prelude::*;
use xemem::trace_layer::{ConservationSums, MetricsSnapshot};
use xemem::{
    MemTier, ProcessRef, Segid, SimDuration, System, SystemBuilder, TierPolicy, TraceHandle,
    VirtAddr,
};
use xemem_sim::SimRng;

const KIB: u64 = 1 << 10;
const MIB: u64 = 1 << 20;
/// Exported segments per schedule.
const SEGS: usize = 4;
/// Workload rounds per schedule.
const ROUNDS: usize = 16;

/// Everything observable about one run. The ticked and tick-free runs
/// of the same seed must produce equal outcomes when the policy is
/// disarmed.
#[derive(Debug, PartialEq)]
struct Outcome {
    ok_ops: u64,
    read_sum: u64,
    clock_ns: u64,
    n_events: usize,
    free_frames: Vec<u64>,
    nvm_free: u64,
    placements: Vec<Option<MemTier>>,
    moves: Vec<(Segid, u64, MemTier, MemTier, u64)>,
    metrics: Option<MetricsSnapshot>,
    sums: ConservationSums,
}

struct Fixture {
    sys: System,
    exporter: ProcessRef,
    attacher: ProcessRef,
    segids: Vec<Segid>,
    bufs: Vec<VirtAddr>,
    vas: Vec<VirtAddr>,
    seg_bytes: Vec<u64>,
    tracer: TraceHandle,
}

/// Build the tiered two-enclave fixture: an Fwk exporter on the Linux
/// enclave (4 KiB pages migrate freely) carrying an NVM reserve, a
/// Kitten attacher, [`SEGS`] exported-and-attached segments with
/// seed-derived sizes, a seed-derived subset parked on NVM.
fn build(seed: u64, policy: TierPolicy) -> Fixture {
    let mut rng = SimRng::seed_from_u64(seed);
    let tracer = TraceHandle::enabled();
    let mut sys = SystemBuilder::new()
        .with_tracer(tracer.clone())
        .with_tier_policy(policy)
        .tier_reserve(MemTier::Nvm, 32 * MIB)
        .linux_management("linux", 4, 128 * MIB)
        .kitten_cokernel("kitten", 1, 64 * MIB)
        .build()
        .expect("fixture build");
    let linux = sys.enclave_by_name("linux").unwrap();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let exporter = sys.spawn_process(linux, 16 * MIB).unwrap();
    let attacher = sys.spawn_process(kitten, 8 * MIB).unwrap();

    let (mut segids, mut bufs, mut vas, mut seg_bytes) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for _ in 0..SEGS {
        let len = rng.uniform_u64(32, 257) * 4 * KIB; // 128 KiB .. 1 MiB
        let buf = sys.alloc_buffer(exporter, len).unwrap();
        sys.prepare_buffer(exporter, buf, len).unwrap();
        let segid = sys.xpmem_make(exporter, buf, len, None).unwrap();
        if rng.uniform_u64(0, 2) == 1 {
            sys.migrate_extent(exporter, segid, MemTier::Nvm).unwrap();
        }
        let apid = sys.xpmem_get(attacher, segid).unwrap();
        let va = sys.xpmem_attach(attacher, apid, 0, len).unwrap();
        segids.push(segid);
        bufs.push(buf);
        vas.push(va);
        seg_bytes.push(len);
    }
    Fixture {
        sys,
        exporter,
        attacher,
        segids,
        bufs,
        vas,
        seg_bytes,
        tracer,
    }
}

/// Drive the seed-derived workload. `tick` interleaves policy ticks at
/// seed-derived rounds; with a disarmed policy those must be free.
fn run_schedule(seed: u64, policy: TierPolicy, tick: bool) -> Outcome {
    let mut f = build(seed, policy);
    // A second RNG stream for the op schedule, so the fixture and the
    // workload draw identical values whether or not ticks interleave.
    let mut rng = SimRng::seed_from_u64(seed ^ 0x7EE5_1D0F);
    let mut ok_ops = 0u64;
    let mut read_sum = 0u64;
    let mut moves = Vec::new();
    for _ in 0..ROUNDS {
        let s = rng.uniform_u64(0, SEGS as u64) as usize;
        let len = f.seg_bytes[s];
        let off = rng.uniform_u64(0, len / (4 * KIB)) * 4 * KIB;
        let span = (len - off).min(rng.uniform_u64(1, 33) * 4 * KIB);
        match rng.uniform_u64(0, 3) {
            0 => {
                // Cross-enclave read through the attachment.
                let mut buf = vec![0u8; span as usize];
                f.sys
                    .read(f.attacher, VirtAddr(f.vas[s].0 + off), &mut buf)
                    .unwrap();
                read_sum = read_sum
                    .wrapping_add(buf.iter().map(|&b| b as u64).sum::<u64>())
                    .wrapping_add(span);
                ok_ops += 1;
            }
            1 => {
                // Owner-side write (contents feed later read checksums).
                let data = vec![(ok_ops % 251) as u8; span as usize];
                f.sys
                    .write(f.exporter, VirtAddr(f.bufs[s].0 + off), &data)
                    .unwrap();
                ok_ops += 1;
            }
            _ => {
                // Owner-side read.
                let mut buf = vec![0u8; span as usize];
                f.sys
                    .read(f.exporter, VirtAddr(f.bufs[s].0 + off), &mut buf)
                    .unwrap();
                read_sum = read_sum.wrapping_add(buf.iter().map(|&b| b as u64).sum::<u64>());
                ok_ops += 1;
            }
        }
        // The coin is drawn unconditionally so the RNG stream stays
        // aligned between ticked and tick-free runs.
        let coin = rng.uniform_u64(0, 2) == 1;
        if tick && coin {
            for m in f.sys.tier_policy_tick(f.exporter).unwrap() {
                moves.push((m.segid, m.chunk, m.from, m.to, m.pages));
            }
        }
    }

    let linux = f.sys.enclave_by_name("linux").unwrap();
    let free_frames = (0..f.sys.enclave_count())
        .map(|i| f.sys.free_frames_of(xemem::EnclaveRef(i)).unwrap())
        .collect();
    let placements = f
        .segids
        .iter()
        .map(|segid| f.sys.tier_of_chunk(linux, *segid, 0))
        .collect();
    Outcome {
        ok_ops,
        read_sum,
        clock_ns: f.sys.clock().now().as_nanos(),
        n_events: f.sys.events().len(),
        nvm_free: f.sys.tier_free_frames(linux, MemTier::Nvm).unwrap(),
        free_frames,
        placements,
        moves,
        metrics: f.tracer.metrics_snapshot(),
        sums: f.tracer.audit().expect("conservation audit"),
    }
}

/// An armed policy tuned so seed-derived schedules actually migrate.
fn armed_policy() -> TierPolicy {
    TierPolicy {
        window: SimDuration::from_micros(200),
        hot_threshold: 2,
        cold_threshold: 0,
        hysteresis: 1,
        chunk_pages: 32,
        fast_tier: MemTier::LocalDram,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The disarmed-policy equivalence theorem: interleaving policy
    /// ticks into a schedule whose hysteresis disables migration
    /// changes nothing observable — results, metrics snapshot and
    /// conservation sums are bit-identical to the never-ticked run.
    #[test]
    fn disarmed_ticks_are_observationally_free(seed in any::<u64>()) {
        let disabled = TierPolicy::disabled();
        let reference = run_schedule(seed, disabled, false);
        prop_assert!(reference.metrics.is_some(), "tracer must be live");
        let ticked = run_schedule(seed, disabled, true);
        prop_assert!(ticked.moves.is_empty(), "disarmed policy migrated under seed {}", seed);
        prop_assert_eq!(
            &ticked, &reference,
            "ticked run diverged from the tick-free reference under seed {}",
            seed
        );
    }

    /// The armed policy is a deterministic function of the seed: two
    /// replays agree on every migration, placement, clock and metric.
    #[test]
    fn armed_policy_is_deterministic(seed in any::<u64>()) {
        let a = run_schedule(seed, armed_policy(), true);
        let b = run_schedule(seed, armed_policy(), true);
        prop_assert_eq!(&a, &b, "armed replay diverged under seed {}", seed);
    }
}
