//! Property test: the windowed PDES engine is *observationally
//! equivalent* to the serial worklist it replaced, under arbitrary
//! fault schedules.
//!
//! Each of the 256 cases derives a random [`FaultPlan`] from the seed
//! (enclave crashes, process kills, shard-scoped name-server outages,
//! lossy-link windows) and drives a chaos-style workload — consumers
//! bundling search/get/release rounds at barriers and touching
//! enclave-local scratch buffers in the lane phase, plus a churn actor
//! removing and re-exporting named segments — through
//! [`xemem_sim::pdes::run_lanes`] at every combination of lanes
//! {1, 2, 5, 8} × workers {1, 8}. The `lanes=1, workers=1` run is the
//! serial reference; every other configuration must reproduce it
//! exactly:
//!
//! * equal results — op tallies, live/removed key books, final clock,
//!   per-enclave free-frame counts, event-log length;
//! * bit-identical metrics snapshots — every counter and histogram the
//!   per-run tracer collected;
//! * equal conservation sums — the audited leaf/root span totals
//!   (`audit()` additionally asserts leaves tile their roots exactly).
//!
//! Lane and worker counts are host resources and simulation *shape*;
//! the theorem under test is that neither is simulation-*visible*.

use proptest::prelude::*;
use xemem::trace_layer::{ConservationSums, Ctx, MetricsSnapshot, SpanKind, Timeline};
use xemem::{
    EnclaveRef, FaultPlan, LanePart, ProcessRef, Segid, System, SystemBuilder, TraceHandle,
    VirtAddr, XememError,
};
use xemem_sim::pdes::{run_lanes, LaneShared, PdesActor, PdesConfig};
use xemem_sim::{SimRng, SimTime};

const MIB: u64 = 1 << 20;
/// Virtual-time span of each random fault schedule.
const HORIZON_NS: u64 = 1_000_000; // 1 ms
/// Barrier rounds per actor; the grid stride (HORIZON / ROUNDS) is far
/// above the PDES lookahead, so bundled rounds respect the window
/// contract.
const ROUNDS: u64 = 8;
/// Name-service shards (replicated ×2, hosted on slots 0..4).
const SHARDS: usize = 2;
/// Workload enclaves (slots 4..8, past the replica set).
const WORKERS: usize = 4;

/// Everything observable about one run. Two runs of the same seed at
/// any `(lanes, workers)` must produce equal outcomes.
#[derive(Debug, PartialEq)]
struct Outcome {
    ok_ops: u64,
    failed_ops: u64,
    stale_reads: u64,
    live_keys: Vec<(Segid, String)>,
    removed_keys: Vec<(String, Segid, u64)>,
    clock_ns: u64,
    n_events: usize,
    /// Per-slot free frames (None for crashed enclaves).
    free_frames: Vec<Option<u64>>,
    /// The tracer's full metrics state: counters, op counts, latency
    /// histograms, per-shard columns.
    metrics: Option<MetricsSnapshot>,
    /// Audited conservation sums (leaf == root enforced by `audit()`).
    sums: ConservationSums,
}

/// Shared state the actors coordinate through at barriers.
struct Shared {
    sys: System,
    tracer: TraceHandle,
    live: Vec<(ProcessRef, Segid, String)>,
    /// Removed names with their revocation-completion time: a probe is
    /// stale only when its virtual time is at or after that completion
    /// (earlier probes read pre-removal history, which is legal under
    /// out-of-order chain execution).
    removed: Vec<(String, Segid, SimTime)>,
    ok_ops: u64,
    failed_ops: u64,
    stale_reads: u64,
    max_end: SimTime,
}

impl Shared {
    fn framed_at<T>(
        &mut self,
        kind: SpanKind,
        ctx: Ctx,
        at: SimTime,
        f: impl FnOnce(&mut System, SimTime) -> Result<(T, SimTime), XememError>,
    ) -> Option<(T, SimTime)> {
        self.tracer.begin_op(kind, at, ctx, Timeline::Detached);
        match f(&mut self.sys, at) {
            Ok((v, end)) => {
                self.tracer.commit_op(end);
                self.ok_ops += 1;
                self.max_end = self.max_end.max(end);
                Some((v, end))
            }
            Err(_) => {
                self.tracer.abort_op();
                self.failed_ops += 1;
                None
            }
        }
    }
}

impl LaneShared for Shared {
    type Part<'a> = LanePart<'a>;

    fn lane_parts(&mut self, lanes: usize) -> Vec<LanePart<'_>> {
        self.sys.lane_parts(lanes)
    }

    fn on_window(&mut self, start: SimTime) {
        <System as LaneShared>::on_window(&mut self.sys, start);
    }
}

fn grid_at(t0_ns: u64, round: u64) -> SimTime {
    SimTime::from_nanos(t0_ns + round * (HORIZON_NS / ROUNDS))
}

/// A consumer bundles a small lookup round at each barrier and touches
/// its scratch buffer in the lane phase; the churn actor (`order` ==
/// WORKERS, merged after every consumer) withdraws one live key and
/// exports a fresh one per round.
struct Actor {
    order: u64,
    /// `None` only for the churn actor under schedules that killed
    /// every spawn before the grid started.
    p: Option<ProcessRef>,
    scratch: Option<VirtAddr>,
    /// `Some` makes this the churn actor, owning the schedule RNG.
    churn: Option<(SimRng, Vec<ProcessRef>, u64)>,
    round: u64,
    t0_ns: u64,
    local_ok: u64,
    local_failed: u64,
    local_max_end: SimTime,
}

impl Actor {
    fn consumer_round(&mut self, at: SimTime, ctx: &mut Shared) {
        let p = self.p.expect("consumers always hold a process");
        let pctx = Ctx::proc(p.enclave.0, p.pid.0);
        let mut t = at;
        for k in 0..4usize {
            if ctx.live.is_empty() {
                break;
            }
            let idx = (self.order as usize * 4 + k + self.round as usize) % ctx.live.len();
            let (_, segid, name) = &ctx.live[idx];
            let (segid, name) = (*segid, name.clone());
            if let Some((_, end)) = ctx.framed_at(SpanKind::Search, pctx, t, |sys, at| {
                sys.search_at(p, &name, at)
            }) {
                t = end;
            }
            if k == 0 {
                let sctx = Ctx::seg(p.enclave.0, p.pid.0, segid.0);
                if let Some((apid, end)) =
                    ctx.framed_at(SpanKind::Get, sctx, t, |sys, at| sys.get_at(p, segid, at))
                {
                    t = end;
                    if let Some(((), end)) = ctx.framed_at(SpanKind::Release, pctx, t, |sys, at| {
                        sys.release_at(p, apid, at).map(|e| ((), e))
                    }) {
                        t = end;
                    }
                }
            }
        }
        // Probe a removed name; count (don't assert) time-qualified
        // staleness — the oracle assertions live in the chaos suite,
        // here the counter only has to be configuration-invariant.
        if let Some((gone_name, gone_segid, gone_at)) = ctx
            .removed
            .get(self.order as usize % ctx.removed.len().max(1))
            .cloned()
        {
            let probe_at = t;
            if let Some((found, _)) = ctx.framed_at(SpanKind::Search, pctx, t, |sys, at| {
                sys.search_at(p, &gone_name, at)
            }) {
                if found == gone_segid && probe_at >= gone_at {
                    ctx.stale_reads += 1;
                }
            }
        }
    }

    fn churn_round(&mut self, at: SimTime, ctx: &mut Shared) {
        let (rng, exporters, gen) = self.churn.as_mut().expect("churn actor");
        let mut t = at;
        if ctx.live.len() > 2 {
            let idx = rng.uniform_u64(0, ctx.live.len() as u64) as usize;
            let (owner, segid, name) = ctx.live.swap_remove(idx);
            let sctx = Ctx::seg(owner.enclave.0, owner.pid.0, segid.0);
            if let Some(((), end)) = ctx.framed_at(SpanKind::Remove, sctx, t, |sys, at| {
                sys.remove_at(owner, segid, at).map(|e| ((), e))
            }) {
                t = end;
                ctx.removed.push((name, segid, end));
            }
        }
        let w = rng.uniform_u64(0, exporters.len().max(1) as u64) as usize;
        if let Some(&exporter) = exporters.get(w) {
            match ctx.sys.alloc_buffer_at(exporter, 64 * 1024, t) {
                Ok((buf, end)) => {
                    ctx.ok_ops += 1;
                    t = end;
                    let name = format!("eq:{w}:{gen}");
                    *gen += 1;
                    let pctx = Ctx::proc(exporter.enclave.0, exporter.pid.0);
                    if let Some((segid, end)) = ctx.framed_at(SpanKind::Make, pctx, t, |sys, at| {
                        sys.make_at(exporter, buf, 64 * 1024, Some(&name), at)
                    }) {
                        ctx.max_end = ctx.max_end.max(end);
                        ctx.live.push((exporter, segid, name));
                    }
                }
                Err(_) => ctx.failed_ops += 1,
            }
        }
    }
}

impl PdesActor<Shared> for Actor {
    fn lane_key(&self) -> u64 {
        self.p.map_or(0, |p| p.enclave.0 as u64)
    }

    fn order_key(&self) -> u64 {
        self.order
    }

    fn first_event(&self) -> Option<SimTime> {
        Some(grid_at(self.t0_ns, 0))
    }

    fn has_local(&self) -> bool {
        self.scratch.is_some()
    }

    fn local(&mut self, now: SimTime, part: &mut LanePart<'_>) {
        let (Some(p), Some(va)) = (self.p, self.scratch) else {
            return;
        };
        let pattern = [(self.round as u8) ^ 0xA5; 32];
        match part.write_at(p, va, &pattern, now) {
            Ok(end) => {
                self.local_ok += 1;
                let mut back = [0u8; 32];
                match part.read_at(p, va, &mut back, end) {
                    Ok(end) => {
                        self.local_ok += 1;
                        self.local_max_end = self.local_max_end.max(end);
                    }
                    Err(_) => self.local_failed += 1,
                }
            }
            Err(_) => self.local_failed += 1,
        }
    }

    fn barrier(&mut self, now: SimTime, shared: &mut Shared) -> Option<SimTime> {
        shared.ok_ops += std::mem::take(&mut self.local_ok);
        shared.failed_ops += std::mem::take(&mut self.local_failed);
        shared.max_end = shared.max_end.max(self.local_max_end);
        if self.churn.is_some() {
            self.churn_round(now, shared);
        } else {
            self.consumer_round(now, shared);
        }
        self.round += 1;
        (self.round < ROUNDS).then(|| grid_at(self.t0_ns, self.round))
    }
}

/// Build the topology, derive the fault schedule from `seed`, run the
/// workload under `(lanes, workers)`, and collect the outcome.
fn run_config(seed: u64, lanes: usize, workers: usize) -> Outcome {
    let mut rng = SimRng::seed_from_u64(seed);
    let slots = 2 * SHARDS + WORKERS;
    let plan = FaultPlan::random_sharded(
        &mut rng,
        SimTime::from_nanos(HORIZON_NS),
        slots,
        3,
        8,
        SHARDS,
    );
    let tracer = TraceHandle::enabled();
    let mut b = SystemBuilder::new().linux_management("linux", 4, 128 * MIB);
    for i in 0..slots - 1 {
        b = b.kitten_cokernel(&format!("k{i}"), 1, 32 * MIB);
    }
    let mut sys = b
        .name_service_shards(SHARDS, 2)
        .with_fault_plan(plan, seed)
        .with_tracer(tracer.clone())
        .build()
        .unwrap();

    let mut ok_ops = 0u64;
    let mut failed_ops = 0u64;
    macro_rules! attempt {
        ($r:expr) => {
            match $r {
                Ok(v) => {
                    ok_ops += 1;
                    Some(v)
                }
                Err(_) => {
                    failed_ops += 1;
                    None
                }
            }
        };
    }

    // One exporter + one consumer per workload enclave, plus initial
    // exports so the lookup storm has a key space from round 0.
    let first_free = 2 * SHARDS;
    let mut exporters: Vec<ProcessRef> = Vec::new();
    let mut consumers: Vec<ProcessRef> = Vec::new();
    for w in 0..WORKERS {
        let e = EnclaveRef(first_free + w);
        if let Some(p) = attempt!(sys.spawn_process(e, 2 * MIB)) {
            exporters.push(p);
        }
        if let Some(p) = attempt!(sys.spawn_process(e, MIB)) {
            consumers.push(p);
        }
    }
    let mut gen = 0u64;
    let mut live: Vec<(ProcessRef, Segid, String)> = Vec::new();
    for (w, &exporter) in exporters.iter().enumerate() {
        for _ in 0..2 {
            if let Some(buf) = attempt!(sys.alloc_buffer(exporter, 64 * 1024)) {
                let name = format!("eq:{w}:{gen}");
                gen += 1;
                if let Some(segid) = attempt!(sys.xpmem_make(exporter, buf, 64 * 1024, Some(&name)))
                {
                    live.push((exporter, segid, name));
                }
            }
        }
    }

    let t0_ns = sys.clock().now().as_nanos();
    let mut actors: Vec<Actor> = Vec::new();
    for (c, &consumer) in consumers.iter().enumerate() {
        let scratch = attempt!(sys.alloc_buffer(consumer, 4096));
        actors.push(Actor {
            order: c as u64,
            p: Some(consumer),
            scratch,
            churn: None,
            round: 0,
            t0_ns,
            local_ok: 0,
            local_failed: 0,
            local_max_end: SimTime::ZERO,
        });
    }
    actors.push(Actor {
        order: WORKERS as u64,
        p: exporters.first().or(consumers.first()).copied(),
        scratch: None,
        churn: Some((rng, exporters.clone(), gen)),
        round: 0,
        t0_ns,
        local_ok: 0,
        local_failed: 0,
        local_max_end: SimTime::ZERO,
    });

    let lookahead = sys.pdes_lookahead();
    let mut shared = Shared {
        sys,
        tracer: tracer.clone(),
        live,
        removed: Vec::new(),
        ok_ops,
        failed_ops,
        stale_reads: 0,
        max_end: SimTime::from_nanos(t0_ns),
    };
    let cfg = PdesConfig::new(lanes, lookahead).with_workers(workers);
    run_lanes(&cfg, &mut actors, &mut shared);
    // Reassign (not shadow) the bindings `attempt!` closed over: the
    // macro body's identifiers resolve at its definition site.
    let Shared {
        sys: sys_back,
        live,
        removed,
        ok_ops: ok_back,
        failed_ops: failed_back,
        stale_reads,
        max_end,
        ..
    } = shared;
    let mut sys = sys_back;
    ok_ops = ok_back;
    failed_ops = failed_back;

    // Drain the rest of the schedule, then retire every process.
    let target = SimTime::from_nanos(t0_ns + HORIZON_NS + 1).max(max_end);
    if sys.clock().now() < target {
        sys.clock().advance_to(target);
    }
    for p in exporters.iter().chain(consumers.iter()) {
        attempt!(sys.exit_process(*p));
    }

    let free_frames: Vec<Option<u64>> = (0..slots)
        .map(|i| {
            let e = EnclaveRef(i);
            sys.enclave_alive(e).then(|| sys.free_frames_of(e).unwrap())
        })
        .collect();
    Outcome {
        ok_ops,
        failed_ops,
        stale_reads,
        live_keys: live.into_iter().map(|(_, s, n)| (s, n)).collect(),
        removed_keys: removed
            .into_iter()
            .map(|(n, s, t)| (n, s, t.as_nanos()))
            .collect(),
        clock_ns: sys.clock().now().as_nanos(),
        n_events: sys.events().len(),
        free_frames,
        metrics: tracer.metrics_snapshot(),
        sums: tracer.audit().expect("conservation audit"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The equivalence theorem, 256 random schedules strong: every
    /// `(lanes, workers)` combination replays the serial reference —
    /// results, metrics, conservation sums — bit for bit.
    #[test]
    fn windowed_pdes_is_observationally_equivalent_to_serial(seed in any::<u64>()) {
        let reference = run_config(seed, 1, 1);
        prop_assert!(reference.metrics.is_some(), "tracer must be live");
        for (lanes, workers) in [(1, 8), (2, 1), (2, 8), (5, 1), (5, 8), (8, 1), (8, 8)] {
            let got = run_config(seed, lanes, workers);
            prop_assert_eq!(
                &got, &reference,
                "lanes={} workers={} diverged from the serial reference under seed {}",
                lanes, workers, seed
            );
        }
    }
}
