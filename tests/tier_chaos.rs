//! Chaos coverage for extent migration under injected tier outages.
//!
//! The tier layer's failure contract, end to end:
//!
//! * an injected outage makes explicit [`System::migrate_extent`] fail
//!   with the typed [`XememError::TierUnavailable`] — and the segment
//!   stays where it was, readable, with the tier's frame books
//!   untouched;
//! * the *policy* never surfaces that error: an armed tick whose chosen
//!   destination is dark records a `tier:migrate-deferred` event, holds
//!   the hot/cold streak, and completes the move on the first tick
//!   after the outage lifts;
//! * chaotic runs stay conserved (the tracer's leaf spans tile their
//!   roots) and deterministic (same seed, same fault plan → the same
//!   outcome, bit for bit).

use xemem::trace_layer::{ConservationSums, MetricsSnapshot};
use xemem::{
    EnclaveRef, FaultPlan, MemTier, ProcessRef, SimDuration, SimTime, System, SystemBuilder,
    TierPolicy, TraceHandle, VirtAddr, XememError,
};
use xemem_sim::SimRng;

const KIB: u64 = 1 << 10;
const MIB: u64 = 1 << 20;

fn hot_policy() -> TierPolicy {
    TierPolicy {
        window: SimDuration::from_micros(100),
        hot_threshold: 4,
        cold_threshold: 0,
        hysteresis: 1,
        chunk_pages: 64, // 256 KiB chunks
        fast_tier: MemTier::LocalDram,
    }
}

/// Single Linux enclave with an NVM reserve, one exported segment
/// parked on NVM, plus the fault plan under test.
fn outage_fixture(
    plan: FaultPlan,
    policy: TierPolicy,
) -> (System, ProcessRef, xemem::Segid, VirtAddr) {
    let mut sys = SystemBuilder::new()
        .with_trace()
        .with_tier_policy(policy)
        .with_fault_plan(plan, 7)
        .tier_reserve(MemTier::Nvm, 64 * MIB)
        .linux_management("linux0", 4, 256 * MIB)
        .build()
        .unwrap();
    let linux = sys.enclave_by_name("linux0").unwrap();
    let owner = sys.spawn_process(linux, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(owner, 512 * KIB).unwrap();
    sys.prepare_buffer(owner, buf, 512 * KIB).unwrap();
    let segid = sys.xpmem_make(owner, buf, 512 * KIB, None).unwrap();
    sys.migrate_extent(owner, segid, MemTier::Nvm).unwrap();
    (sys, owner, segid, buf)
}

#[test]
fn outage_rejects_explicit_migration_and_leaves_books_intact() {
    let plan = FaultPlan::new()
        .tiers_configured(&[MemTier::LocalDram, MemTier::Nvm])
        .tier_outage(
            SimTime::ZERO,
            0,
            MemTier::LocalDram,
            SimDuration::from_secs(3600),
        );
    let (mut sys, owner, segid, buf) = outage_fixture(plan, TierPolicy::disabled());
    let linux = sys.enclave_by_name("linux0").unwrap();
    let dram_free = sys.tier_free_frames(linux, MemTier::LocalDram).unwrap();
    let nvm_free = sys.tier_free_frames(linux, MemTier::Nvm).unwrap();

    let err = sys
        .migrate_extent(owner, segid, MemTier::LocalDram)
        .unwrap_err();
    assert!(
        matches!(
            err,
            XememError::TierUnavailable {
                slot: 0,
                tier: MemTier::LocalDram
            }
        ),
        "expected a typed tier outage, got {err:?}"
    );

    // Nothing moved, nothing leaked, bytes still readable.
    assert_eq!(sys.tier_of_chunk(linux, segid, 0), Some(MemTier::Nvm));
    assert_eq!(
        sys.tier_free_frames(linux, MemTier::LocalDram).unwrap(),
        dram_free
    );
    assert_eq!(sys.tier_free_frames(linux, MemTier::Nvm).unwrap(), nvm_free);
    let mut page = vec![0u8; 4096];
    sys.read(owner, buf, &mut page).unwrap();
}

#[test]
fn armed_tick_defers_through_an_outage_and_completes_after_it_lifts() {
    // DRAM is dark for the first 10 ms of virtual time.
    let plan = FaultPlan::new()
        .tiers_configured(&[MemTier::LocalDram, MemTier::Nvm])
        .tier_outage(
            SimTime::ZERO,
            0,
            MemTier::LocalDram,
            SimDuration::from_micros(10_000),
        );
    let (mut sys, owner, segid, buf) = outage_fixture(plan, hot_policy());
    let linux = sys.enclave_by_name("linux0").unwrap();

    // Hammer chunk 0 hot, then tick while DRAM is still out.
    let mut page = vec![0u8; 4096];
    for _ in 0..400 {
        sys.read(owner, buf, &mut page).unwrap();
    }
    assert!(
        sys.clock().now() < SimTime::from_nanos(10_000_000),
        "workload must still be inside the outage window"
    );
    let moves = sys.tier_policy_tick(owner).unwrap();
    assert!(
        moves.is_empty(),
        "no move can land while DRAM is dark, got {moves:?}"
    );
    assert_eq!(
        sys.tier_of_chunk(linux, segid, 0),
        Some(MemTier::Nvm),
        "the hot chunk stays parked during the outage"
    );
    assert!(
        sys.events().with_prefix("tier:migrate-deferred").count() >= 1,
        "the deferred promotion is recorded in the event log"
    );

    // Keep the chunk hot across the outage boundary; the first tick
    // after DRAM returns lands the deferred promotion.
    let mut landed = Vec::new();
    for _ in 0..400 {
        for _ in 0..50 {
            sys.read(owner, buf, &mut page).unwrap();
        }
        landed.extend(sys.tier_policy_tick(owner).unwrap());
        if sys.tier_of_chunk(linux, segid, 0) == Some(MemTier::LocalDram) {
            break;
        }
    }
    assert!(
        sys.clock().now() >= SimTime::from_nanos(10_000_000),
        "promotion can only have landed after the outage lifted"
    );
    assert!(
        landed
            .iter()
            .any(|m| m.chunk == 0 && m.to == MemTier::LocalDram),
        "promotion completes once the tier returns, got {landed:?}"
    );
    assert_eq!(sys.tier_of_chunk(linux, segid, 0), Some(MemTier::LocalDram));
    sys.read(owner, buf, &mut page).unwrap();
}

/// Everything observable about one chaos run.
#[derive(Debug, PartialEq)]
struct Outcome {
    ok_ops: u64,
    deferred: u64,
    moved_pages: u64,
    clock_ns: u64,
    free_frames: Vec<u64>,
    placements: Vec<Option<MemTier>>,
    metrics: Option<MetricsSnapshot>,
    sums: ConservationSums,
}

/// A seeded chaotic run: four segments parked on NVM, random reads and
/// explicit chunk migrations racing three scheduled tier outages, with
/// armed policy ticks interleaved.
fn chaos_run(seed: u64) -> Outcome {
    let plan = FaultPlan::new()
        .tiers_configured(&[MemTier::LocalDram, MemTier::Nvm])
        // Sized against the ~24 ms virtual span of the 200-round
        // workload below (fixture setup alone burns ~3 ms).
        .tier_outage(
            SimTime::from_nanos(4_000_000),
            0,
            MemTier::LocalDram,
            SimDuration::from_micros(5_000),
        )
        .tier_outage(
            SimTime::from_nanos(11_000_000),
            0,
            MemTier::Nvm,
            SimDuration::from_micros(3_000),
        )
        .tier_outage(
            SimTime::from_nanos(17_000_000),
            0,
            MemTier::LocalDram,
            SimDuration::from_micros(2_000),
        );
    let tracer = TraceHandle::enabled();
    let mut sys = SystemBuilder::new()
        .with_tracer(tracer.clone())
        .with_tier_policy(hot_policy())
        .with_fault_plan(plan, seed)
        .tier_reserve(MemTier::Nvm, 64 * MIB)
        .linux_management("linux0", 4, 256 * MIB)
        .build()
        .unwrap();
    let linux = sys.enclave_by_name("linux0").unwrap();
    let owner = sys.spawn_process(linux, 32 * MIB).unwrap();

    let mut rng = SimRng::seed_from_u64(seed);
    let (mut segids, mut bufs) = (Vec::new(), Vec::new());
    for _ in 0..4 {
        let len = 512 * KIB;
        let buf = sys.alloc_buffer(owner, len).unwrap();
        sys.prepare_buffer(owner, buf, len).unwrap();
        let segid = sys.xpmem_make(owner, buf, len, None).unwrap();
        sys.migrate_extent(owner, segid, MemTier::Nvm).unwrap();
        segids.push(segid);
        bufs.push(buf);
    }

    let (mut ok_ops, mut deferred, mut moved_pages) = (0u64, 0u64, 0u64);
    let mut page = vec![0u8; 16 * KIB as usize];
    for round in 0..200u64 {
        let s = rng.uniform_u64(0, 4) as usize;
        match rng.uniform_u64(0, 4) {
            0..=1 => {
                let off = rng.uniform_u64(0, 512 / 16) * 16 * KIB;
                sys.read(owner, VirtAddr(bufs[s].0 + off), &mut page)
                    .unwrap();
                ok_ops += 1;
            }
            2 => {
                let dst = if rng.uniform_u64(0, 2) == 1 {
                    MemTier::LocalDram
                } else {
                    MemTier::Nvm
                };
                match sys.migrate_extent(owner, segids[s], dst) {
                    Ok(pages) => {
                        moved_pages += pages;
                        ok_ops += 1;
                    }
                    Err(XememError::TierUnavailable { .. }) => deferred += 1,
                    Err(e) => panic!("unexpected chaos error at round {round}: {e:?}"),
                }
            }
            _ => {
                for m in sys.tier_policy_tick(owner).unwrap() {
                    moved_pages += m.pages;
                }
                ok_ops += 1;
            }
        }
    }

    let free_frames = (0..sys.enclave_count())
        .map(|i| sys.free_frames_of(EnclaveRef(i)).unwrap())
        .collect();
    let placements = segids
        .iter()
        .map(|segid| sys.tier_of_chunk(linux, *segid, 0))
        .collect();
    Outcome {
        ok_ops,
        deferred,
        moved_pages,
        clock_ns: sys.clock().now().as_nanos(),
        free_frames,
        placements,
        metrics: tracer.metrics_snapshot(),
        sums: tracer.audit().expect("conservation audit"),
    }
}

#[test]
fn chaotic_migration_stays_conserved_and_exercises_every_path() {
    let out = chaos_run(11);
    assert!(out.ok_ops > 0, "workload made progress");
    assert!(
        out.deferred > 0,
        "the schedule must actually hit an outage; tune the plan if not"
    );
    assert!(out.moved_pages > 0, "some migrations must land");
    assert!(out.metrics.is_some(), "tracer collected metrics");
    // `audit()` has already asserted leaf/root conservation; pin that
    // migrations contributed real spans.
    assert!(out.clock_ns > 0);
}

#[test]
fn chaotic_migration_is_deterministic_per_seed() {
    for seed in [3u64, 11, 42] {
        let a = chaos_run(seed);
        let b = chaos_run(seed);
        assert_eq!(a, b, "chaos replay diverged under seed {seed}");
    }
    let a = chaos_run(3);
    let b = chaos_run(4);
    assert_ne!(
        a.sums, b.sums,
        "different seeds should produce observably different schedules"
    );
}

#[test]
fn fault_plan_validation_rejects_undeclared_tier_scenarios() {
    let err = FaultPlan::new()
        .tiers_configured(&[MemTier::Nvm])
        .tier_outage(SimTime::ZERO, 0, MemTier::Cxl, SimDuration::from_micros(10))
        .validate(1, 4)
        .unwrap_err();
    assert!(
        err.contains("cxl"),
        "the offending tier is named in the error, got: {err}"
    );
}
