//! Integration tests: concurrency stress over the simulator's shared
//! state (physical memory, the virtual clock, channel resources) using
//! real OS threads, plus determinism checks — equal seeds must produce
//! bit-identical experiment results.

use crossbeam::thread;
use xemem::SystemBuilder;
use xemem_mem::{Pfn, PhysAddr, PhysicalMemory};
use xemem_sim::{Clock, RunDriver, RunPlan, SimDuration};

const MIB: u64 = 1 << 20;

#[test]
fn physical_memory_is_thread_safe_under_mixed_load() {
    let phys = PhysicalMemory::new(4096);
    thread::scope(|s| {
        // Writers on disjoint frame ranges.
        for t in 0..8u64 {
            let phys = &phys;
            s.spawn(move |_| {
                let pattern = [t as u8 + 1; 4096];
                for round in 0..50u64 {
                    let frame = t * 512 + (round % 512);
                    phys.write(Pfn(frame).base(), &pattern).unwrap();
                }
            });
        }
        // Concurrent readers over everything.
        for _ in 0..4 {
            let phys = &phys;
            s.spawn(move |_| {
                let mut buf = [0u8; 4096];
                for frame in 0..4096u64 {
                    phys.read(Pfn(frame).base(), &mut buf).unwrap();
                }
            });
        }
    })
    .unwrap();
    // Every written frame holds exactly its writer's pattern.
    let mut buf = [0u8; 4096];
    for t in 0..8u64 {
        phys.read(PhysAddr((t * 512) << 12), &mut buf).unwrap();
        assert!(
            buf.iter().all(|&b| b == t as u8 + 1),
            "torn write in thread {t} range"
        );
    }
}

#[test]
fn clock_is_monotonic_across_threads() {
    let clock = Clock::new();
    thread::scope(|s| {
        for _ in 0..8 {
            let clock = clock.clone();
            s.spawn(move |_| {
                let mut last = clock.now();
                for _ in 0..10_000 {
                    let now = clock.advance(SimDuration::from_nanos(3));
                    assert!(now > last);
                    last = now;
                }
            });
        }
    })
    .unwrap();
    assert_eq!(clock.now().as_nanos(), 8 * 10_000 * 3);
}

#[test]
fn independent_systems_run_in_parallel_threads() {
    // Whole System instances are Send: run eight complete cross-enclave
    // workflows concurrently through the run driver and verify each
    // round trip comes back in unit order, whatever worker ran it.
    let driver = RunDriver::new(RunPlan::new(8).with_jobs(8));
    let echoed = driver.execute(|ctx| {
        let t = ctx.index as u8;
        let mut sys = SystemBuilder::new()
            .linux_management("linux", 2, 64 * MIB)
            .kitten_cokernel("kitten", 1, 64 * MIB)
            .build()
            .unwrap();
        let kitten = sys.enclave_by_name("kitten").unwrap();
        let linux = sys.enclave_by_name("linux").unwrap();
        let exporter = sys.spawn_process(kitten, 8 * MIB).unwrap();
        let attacher = sys.spawn_process(linux, 8 * MIB).unwrap();
        let buf = sys.alloc_buffer(exporter, MIB).unwrap();
        let msg = [t + 0x30; 64];
        sys.write(exporter, buf, &msg).unwrap();
        let segid = sys.xpmem_make(exporter, buf, MIB, None).unwrap();
        let apid = sys.xpmem_get(attacher, segid).unwrap();
        let va = sys.xpmem_attach(attacher, apid, 0, MIB).unwrap();
        let mut got = [0u8; 64];
        sys.read(attacher, va, &mut got).unwrap();
        assert_eq!(got, msg);
        got[0]
    });
    let expected: Vec<u8> = (0..8u8).map(|t| t + 0x30).collect();
    assert_eq!(echoed, expected);
}

#[test]
fn many_segments_and_attachments_interleaved() {
    // A single system under a churn of 64 segments with interleaved
    // attach/detach across two attacher processes.
    let mut sys = SystemBuilder::new()
        .linux_management("linux", 4, 256 * MIB)
        .kitten_cokernel("kitten", 1, 192 * MIB)
        .build()
        .unwrap();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let exporter = sys.spawn_process(kitten, 128 * MIB).unwrap();
    let a1 = sys.spawn_process(linux, 32 * MIB).unwrap();
    let a2 = sys.spawn_process(linux, 32 * MIB).unwrap();

    let mut live = Vec::new();
    for i in 0..64u64 {
        let buf = sys.alloc_buffer(exporter, MIB).unwrap();
        sys.write(exporter, buf, &i.to_le_bytes()).unwrap();
        let segid = sys.xpmem_make(exporter, buf, MIB, None).unwrap();
        let attacher = if i % 2 == 0 { a1 } else { a2 };
        let apid = sys.xpmem_get(attacher, segid).unwrap();
        let va = sys.xpmem_attach(attacher, apid, 0, MIB).unwrap();
        live.push((attacher, segid, va, i));
        // Detach every third attachment as we go.
        if i % 3 == 2 {
            let (p, _, va, _) = live.remove((i % live.len() as u64) as usize);
            sys.xpmem_detach(p, va).unwrap();
        }
    }
    // Every surviving attachment still reads its own segment's value.
    for (p, _, va, i) in &live {
        let mut got = [0u8; 8];
        sys.read(*p, *va, &mut got).unwrap();
        assert_eq!(u64::from_le_bytes(got), *i);
    }
}

#[test]
fn equal_seeds_give_identical_experiment_results() {
    use xemem_workloads::insitu::{
        run_insitu, AnalyticsEnclave, AttachModel, ExecutionModel, InsituConfig, SimEnclave,
    };
    let cfg = InsituConfig::smoke(
        SimEnclave::KittenCokernel,
        AnalyticsEnclave::LinuxNative,
        ExecutionModel::Asynchronous,
        AttachModel::Recurring,
    );
    let a = run_insitu(&cfg).unwrap();
    let b = run_insitu(&cfg).unwrap();
    assert_eq!(
        a.sim_completion, b.sim_completion,
        "same seed must be deterministic"
    );
    let mut cfg2 = cfg.clone();
    cfg2.seed ^= 0xDEAD;
    let c = run_insitu(&cfg2).unwrap();
    assert_ne!(
        a.sim_completion, c.sim_completion,
        "different seeds must differ"
    );
}
