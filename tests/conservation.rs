//! Conservation auditor: every charged nanosecond is attributed.
//!
//! The tracing layer's core invariant is *cost conservation*: the sum
//! of attributed leaf-span durations equals the sum of root (op) span
//! durations on each timeline, and the clock-timeline roots tile the
//! virtual time that actually elapsed on the system clock — exactly,
//! in integer nanoseconds, never approximately. These tests gate that
//! invariant over the figure workloads and over ≥64 seeded fault
//! schedules (the same schedule template as `fault_proptest.rs`, so
//! crashes, kills, outages and lossy links all land mid-workload), and
//! pin the zero-observer-effect property: a run with tracing disabled
//! produces bit-identical virtual time and figure outputs to a run
//! with tracing enabled.

use xemem::trace_layer::{Counter, MetricsSnapshot};
use xemem::{EnclaveRef, FaultPlan, ProcessRef, SimDuration, SimTime, SystemBuilder, TraceHandle};
use xemem_sim::{RunDriver, RunPlan, SimRng};

const MIB: u64 = 1 << 20;
const HORIZON: u64 = 1_000_000; // 1 ms
const ROUNDS: u64 = 4;
const SCHEDULES: u64 = 64;

/// A small tracer: the conservation sums are exact regardless of ring
/// capacity (overwritten spans stay counted), so tests keep the rings
/// small.
fn test_tracer() -> TraceHandle {
    TraceHandle::with_capacity(1024, 4)
}

/// What a schedule run leaves behind. Equality across tracing modes is
/// the observer-effect check.
#[derive(Debug, PartialEq, Eq)]
struct RunResult {
    clock_ns: u64,
    ok_ops: u32,
    failed_ops: u32,
    n_events: usize,
}

/// Drive the `fault_proptest` workload template under `tracer`,
/// additionally summing the virtual time spent in *manual* clock
/// advances (idle marches across the fault horizon) — idle time is the
/// one component of elapsed time no operation pays for, so the clock
/// audit expects `elapsed - idle`.
fn run_schedule(seed: u64, tracer: &TraceHandle) -> (RunResult, SimDuration) {
    let mut rng = SimRng::seed_from_u64(seed);
    let plan = FaultPlan::random(&mut rng, SimTime::from_nanos(HORIZON), 3, 4, 6);
    let mut sys = SystemBuilder::new()
        .with_tracer(tracer.clone())
        .linux_management("linux", 4, 256 * MIB)
        .kitten_cokernel("kitten0", 1, 128 * MIB)
        .kitten_cokernel("kitten1", 1, 128 * MIB)
        .with_fault_plan(plan, seed)
        .build()
        .unwrap();
    let encs: Vec<EnclaveRef> = ["linux", "kitten0", "kitten1"]
        .iter()
        .map(|n| sys.enclave_by_name(n).unwrap())
        .collect();

    let mut ok_ops = 0u32;
    let mut failed_ops = 0u32;
    macro_rules! attempt {
        ($r:expr) => {
            match $r {
                Ok(v) => {
                    ok_ops += 1;
                    Some(v)
                }
                Err(_e) => {
                    failed_ops += 1;
                    None
                }
            }
        };
    }

    let mut idle = SimDuration::ZERO;
    let mut march = |sys: &mut xemem::System, target: SimTime| {
        let now = sys.clock().now();
        if now < target {
            idle += target.duration_since(now);
            sys.clock().advance_to(target);
        }
    };

    let mut procs: Vec<Vec<ProcessRef>> = Vec::new();
    for &e in &encs {
        let mut v = Vec::new();
        for _ in 0..2 {
            if let Some(p) = attempt!(sys.spawn_process(e, 16 * MIB)) {
                v.push(p);
            }
        }
        procs.push(v);
    }

    let mut attached: Vec<(ProcessRef, xemem::VirtAddr)> = Vec::new();
    let mut exported: Vec<(ProcessRef, xemem::Segid)> = Vec::new();
    for round in 0..ROUNDS {
        for (e, ps) in procs.clone().into_iter().enumerate() {
            let Some(&exporter) = ps.first() else {
                continue;
            };
            if let Some(buf) = attempt!(sys.alloc_buffer(exporter, MIB)) {
                attempt!(sys.write(exporter, buf, b"payload"));
                let name = format!("seg:{e}:{round}");
                if let Some(segid) = attempt!(sys.xpmem_make(exporter, buf, MIB, Some(&name))) {
                    exported.push((exporter, segid));
                }
            }
        }
        for (e, ps) in procs.clone().into_iter().enumerate() {
            let Some(&consumer) = ps.get(1) else { continue };
            let target = (e + 1) % encs.len();
            let name = format!("seg:{target}:{round}");
            let Some(segid) = attempt!(sys.xpmem_search(consumer, &name)) else {
                continue;
            };
            let Some(apid) = attempt!(sys.xpmem_get(consumer, segid)) else {
                continue;
            };
            if let Some(va) = attempt!(sys.xpmem_attach(consumer, apid, 0, MIB)) {
                let mut b = [0u8; 7];
                attempt!(sys.read(consumer, va, &mut b));
                attached.push((consumer, va));
            }
        }
        if round % 2 == 1 {
            for (p, va) in attached.drain(..) {
                attempt!(sys.xpmem_detach(p, va));
            }
        }
        if round == 2 {
            for (p, segid) in exported.drain(..) {
                attempt!(sys.xpmem_remove(p, segid));
            }
        }
        march(
            &mut sys,
            SimTime::from_nanos((round + 1) * HORIZON / ROUNDS),
        );
    }

    march(&mut sys, SimTime::from_nanos(HORIZON + 1));
    for ps in procs.clone() {
        for p in ps {
            attempt!(sys.exit_process(p));
        }
    }

    let result = RunResult {
        clock_ns: sys.clock().now().as_nanos(),
        ok_ops,
        failed_ops,
        n_events: sys.events().len(),
    };
    (result, idle)
}

/// The tentpole gate: across 64 seeded fault schedules, every charged
/// nanosecond is attributed to exactly one leaf span, leaves tile their
/// op roots, and clock-timeline roots tile the non-idle elapsed time —
/// all exact. A disabled-tracing twin of every run must land on the
/// same virtual clock with the same op outcomes.
#[test]
fn sixty_four_fault_schedules_conserve_every_nanosecond() {
    // The schedules are independent units, so they run through the
    // parallel driver (each with its own tracer, indexed by unit); the
    // audits below read the tracers back in unit order.
    let tracers: Vec<TraceHandle> = (0..SCHEDULES).map(|_| test_tracer()).collect();
    let driver = RunDriver::new(RunPlan::new(SCHEDULES as usize));
    let outcomes = driver.execute(|ctx| {
        let seed = ctx.index as u64;
        let (traced, idle) = run_schedule(seed, &tracers[ctx.index]);
        let (plain, plain_idle) = run_schedule(seed, &TraceHandle::disabled());
        assert_eq!(
            traced, plain,
            "seed {seed}: tracing changed the simulation (observer effect)"
        );
        assert_eq!(idle, plain_idle, "seed {seed}: idle accounting diverged");
        (traced, idle)
    });
    for (seed, ((traced, idle), tracer)) in outcomes.iter().zip(&tracers).enumerate() {
        let elapsed = SimDuration::from_nanos(traced.clock_ns);
        let sums = tracer
            .audit_clock(elapsed - *idle)
            .unwrap_or_else(|e| panic!("seed {seed}: conservation audit failed: {e}"));
        assert!(
            sums.total_attributed_ns() > 0,
            "seed {seed}: schedule attributed no time at all"
        );
    }
}

/// Parallel-vs-serial observational equivalence: the same 64 fault
/// schedules — seeded by splitting one root seed per unit index, never
/// by scheduling — executed at `--jobs 1` and `--jobs 8` yield equal
/// run results, equal idle accounting, and bit-identical
/// metrics-registry snapshots from the per-run tracers.
#[test]
fn parallel_and_serial_schedules_are_observationally_equivalent() {
    const ROOT: u64 = 0xC0A5_EED5;
    let run_all = |jobs: usize| -> (Vec<(RunResult, SimDuration)>, Vec<MetricsSnapshot>) {
        let tracers: Vec<TraceHandle> = (0..SCHEDULES).map(|_| test_tracer()).collect();
        let driver = RunDriver::new(
            RunPlan::new(SCHEDULES as usize)
                .with_jobs(jobs)
                .with_seed(ROOT),
        );
        let results = driver.execute(|ctx| run_schedule(ctx.seed, &tracers[ctx.index]));
        let snapshots = tracers
            .iter()
            .map(|t| t.metrics_snapshot().expect("enabled tracer snapshots"))
            .collect();
        (results, snapshots)
    };
    let (serial_results, serial_snapshots) = run_all(1);
    let (parallel_results, parallel_snapshots) = run_all(8);
    assert_eq!(serial_results, parallel_results, "run results diverged");
    assert_eq!(
        serial_snapshots, parallel_snapshots,
        "metrics registries diverged"
    );
}

/// Figure workloads audit clean: fig5/fig6/table2 run their own
/// per-system `audit_scope` internally when handed an enabled tracer
/// (clock tiling included — the figure drivers never advance the clock
/// manually), and their outputs are bit-identical to untraced runs.
#[test]
fn figure_workloads_audit_and_match_untraced_runs() {
    let tracer = test_tracer();

    let traced = xemem_bench::fig5::run_with(&[4 * MIB], 3, &tracer).unwrap();
    let plain = xemem_bench::fig5::run(&[4 * MIB], 3).unwrap();
    for (t, p) in traced.iter().zip(&plain) {
        assert_eq!(t.attach_gbps.to_bits(), p.attach_gbps.to_bits());
        assert_eq!(t.attach_read_gbps.to_bits(), p.attach_read_gbps.to_bits());
        assert_eq!(t.rdma_gbps.to_bits(), p.rdma_gbps.to_bits());
    }

    let traced = xemem_bench::fig6::run_cell_with(2, 4 * MIB, 3, &tracer).unwrap();
    let plain = xemem_bench::fig6::run_cell(2, 4 * MIB, 3).unwrap();
    assert_eq!(traced.gbps.to_bits(), plain.gbps.to_bits());
    assert_eq!(traced.core0_wait, plain.core0_wait);

    let traced = xemem_bench::table2::run_with(8 * MIB, 2, &tracer).unwrap();
    let plain = xemem_bench::table2::run(8 * MIB, 2).unwrap();
    for (t, p) in traced.iter().zip(&plain) {
        assert_eq!(t.gbps.to_bits(), p.gbps.to_bits());
        assert_eq!(
            t.gbps_without_rb.map(f64::to_bits),
            p.gbps_without_rb.map(f64::to_bits)
        );
    }

    // And the whole-handle audit still balances after all three.
    tracer.audit().expect("combined figure audit");
}

/// The exporters produce parseable artifacts: the chrome://tracing JSON
/// round-trips through a JSON parser and the folded stacks are
/// `semicolon;separated;frames <count>` lines.
#[test]
fn exports_parse() {
    let tracer = test_tracer();
    xemem_bench::fig6::run_cell_with(1, 4 * MIB, 2, &tracer).unwrap();

    let json = tracer.chrome_trace_json();
    let doc = xemem_bench::wallclock::Json::parse(&json).expect("chrome trace JSON parses");
    match doc {
        xemem_bench::wallclock::Json::Arr(events) => {
            assert!(!events.is_empty(), "empty trace export");
            for ev in &events {
                assert_eq!(
                    ev.get("ph"),
                    Some(&xemem_bench::wallclock::Json::Str("X".into()))
                );
                assert!(ev.get("ts").is_some() && ev.get("dur").is_some());
            }
        }
        other => panic!("chrome trace is not a JSON array: {other:?}"),
    }

    let folded = tracer.folded_stacks();
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("folded line has a count");
        assert!(!stack.is_empty());
        count.parse::<u64>().expect("folded count is an integer");
    }

    // Metrics flowed: the cell performed attaches, so the attach
    // histogram and op counters are non-empty.
    assert!(tracer.op_count(xemem::trace_layer::SpanKind::Attach) > 0);
    assert!(tracer.counter(Counter::FramesReturned) == 0); // no crashes here
}

/// Disabled handles refuse to audit (nothing was recorded) and record
/// nothing.
#[test]
fn disabled_handle_is_inert() {
    let tracer = TraceHandle::disabled();
    assert!(!tracer.is_enabled());
    assert!(tracer.audit().is_err());
    assert!(tracer.spans().is_empty());
    assert_eq!(tracer.counter(Counter::NsRetries), 0);
}
