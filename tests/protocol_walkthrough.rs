//! Integration test: the shared-memory protocol walk-through of paper
//! Fig. 3, step by step, with the message trace asserted at each stage.
//!
//! Fig. 3's scenario: three enclaves register domains with the name
//! server; enclave 1 exports a region (allocating segid X); enclave 2
//! attaches to segid X, which routes through the name server to the
//! owner, triggers the PFN-list generation, and returns the list for
//! local mapping — after which both processes address the same physical
//! frames.

use xemem::{MessageKind, SystemBuilder, VirtAddr};

const MIB: u64 = 1 << 20;

#[test]
fn fig3_walkthrough() {
    // Enclave 0 = name server (management Linux); enclaves 1 and 2 are
    // co-kernels, as in the figure.
    let mut sys = SystemBuilder::new()
        .with_trace()
        .linux_management("enclave0", 4, 256 * MIB)
        .kitten_cokernel("enclave1", 1, 128 * MIB)
        .kitten_cokernel("enclave2", 1, 128 * MIB)
        .build()
        .unwrap();

    // Step 1 (registration) already ran at build: both co-kernels
    // discovered the name server and allocated enclave IDs through it.
    let reg_kinds: Vec<MessageKind> = sys.trace().iter().map(|m| m.kind).collect();
    assert!(reg_kinds.contains(&MessageKind::NameServerQuery));
    assert!(reg_kinds.contains(&MessageKind::AllocEnclaveId));
    assert!(reg_kinds.contains(&MessageKind::EnclaveIdReply));
    sys.clear_trace();

    let e1 = sys.enclave_by_name("enclave1").unwrap();
    let e2 = sys.enclave_by_name("enclave2").unwrap();
    let exporter = sys.spawn_process(e1, 32 * MIB).unwrap();
    let attacher = sys.spawn_process(e2, 32 * MIB).unwrap();

    // Steps 2–3: enclave 1 exports a region; the segid allocation
    // request routes to the name server and the reply returns.
    let buf = sys.alloc_buffer(exporter, 4 * MIB).unwrap();
    sys.write(exporter, buf, b"fig3 payload").unwrap();
    let segid = sys.xpmem_make(exporter, buf, 4 * MIB, None).unwrap();
    let make_hops: Vec<(usize, usize, MessageKind)> = sys
        .trace()
        .iter()
        .map(|m| (m.from_slot, m.to_slot, m.kind))
        .collect();
    assert_eq!(
        make_hops,
        vec![
            (1, 0, MessageKind::AllocSegid),
            (0, 1, MessageKind::SegidReply),
        ]
    );
    sys.clear_trace();

    // Steps 4–7: enclave 2 attaches. The get validates the segid with
    // the name server; the attach request routes enclave2 → name server
    // → enclave1; the owner walks its page tables; the PFN list routes
    // back for local mapping.
    let apid = sys.xpmem_get(attacher, segid).unwrap();
    let outcome = sys
        .xpmem_attach_outcome(attacher, apid, 0, 4 * MIB)
        .unwrap();
    let attach_hops: Vec<(usize, usize, MessageKind)> = sys
        .trace()
        .iter()
        .map(|m| (m.from_slot, m.to_slot, m.kind))
        .collect();
    let pages = 4 * MIB / 4096;
    assert_eq!(
        attach_hops,
        vec![
            (2, 0, MessageKind::SearchSegid),
            (0, 2, MessageKind::SearchReply),
            (2, 0, MessageKind::GetPfnList),
            (0, 1, MessageKind::GetPfnList),
            (1, 0, MessageKind::PfnListReply { pages }),
            (0, 2, MessageKind::PfnListReply { pages }),
        ],
        "attach must route through the name server in both directions"
    );

    // The serve phase did real page-table-walk work and the reply's bulk
    // payload dominated the request's (tiny command header vs 8 B/page).
    assert!(outcome.serve > xemem::SimDuration::ZERO);
    assert!(outcome.route_reply > outcome.route_request);

    // And the mapping is real: both processes see the same bytes.
    let mut got = vec![0u8; 12];
    sys.read(attacher, outcome.va, &mut got).unwrap();
    assert_eq!(&got, b"fig3 payload");
    sys.write(attacher, VirtAddr(outcome.va.0 + 100), b"reply")
        .unwrap();
    let mut back = vec![0u8; 5];
    sys.read(exporter, VirtAddr(buf.0 + 100), &mut back)
        .unwrap();
    assert_eq!(&back, b"reply");
}

#[test]
fn routing_avoids_name_server_when_route_known() {
    // After an enclave ID allocation passes through an intermediate hop,
    // that hop can route directly (paper §3.2's forwarding algorithm) —
    // verify with the name server placed *off* the direct path.
    let mut sys = SystemBuilder::new()
        .with_trace()
        .linux_management("mgmt", 4, 256 * MIB)
        .kitten_cokernel("k0", 1, 128 * MIB)
        .kitten_cokernel("k1", 1, 128 * MIB)
        .name_server_at("k0")
        .build()
        .unwrap();
    let mgmt = sys.enclave_by_name("mgmt").unwrap();
    let k1 = sys.enclave_by_name("k1").unwrap();
    let exporter = sys.spawn_process(k1, 16 * MIB).unwrap();
    let attacher = sys.spawn_process(mgmt, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    let segid = sys.xpmem_make(exporter, buf, MIB, None).unwrap();
    sys.clear_trace();
    let apid = sys.xpmem_get(attacher, segid).unwrap();
    let _va = sys.xpmem_attach(attacher, apid, 0, MIB).unwrap();
    // The GetPfnList from mgmt must route mgmt→k0 (toward NS)… but mgmt
    // learned k1's route during registration (it forwarded k1's ID
    // reply), so the request goes straight to k1 instead.
    let first_attach_hop = sys
        .trace()
        .iter()
        .find(|m| m.kind == MessageKind::GetPfnList)
        .expect("attach request sent");
    assert_eq!(first_attach_hop.from_slot, 0);
    assert_eq!(
        first_attach_hop.to_slot, 2,
        "mgmt already knows the route to k1 and must not detour via the name server"
    );
}
