//! Integration tests: failure injection across the full stack — resource
//! exhaustion, stale identifiers, invalid windows, permission violations
//! and teardown ordering.

use xemem::{GuestOs, MemoryMapKind, SystemBuilder, VirtAddr, XememError};
use xemem_mem::KernelError;

const MIB: u64 = 1 << 20;

fn sys2() -> xemem::System {
    SystemBuilder::new()
        .linux_management("linux", 4, 256 * MIB)
        .kitten_cokernel("kitten", 1, 128 * MIB)
        .build()
        .unwrap()
}

#[test]
fn stale_segid_after_remove_fails_everywhere() {
    let mut sys = sys2();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let exporter = sys.spawn_process(kitten, 16 * MIB).unwrap();
    let attacher = sys.spawn_process(linux, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    let segid = sys.xpmem_make(exporter, buf, MIB, None).unwrap();

    // A grant issued before removal…
    let apid = sys.xpmem_get(attacher, segid).unwrap();
    sys.xpmem_remove(exporter, segid).unwrap();

    // …no longer attaches: the owner's registration is gone.
    assert!(matches!(
        sys.xpmem_attach(attacher, apid, 0, MIB),
        Err(XememError::UnknownSegid(_))
    ));
    // And new gets fail at the name server.
    assert!(matches!(sys.xpmem_get(attacher, segid), Err(XememError::UnknownSegid(_))));
    // Double remove fails.
    assert!(sys.xpmem_remove(exporter, segid).is_err());
}

#[test]
fn apid_is_process_scoped() {
    let mut sys = sys2();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let exporter = sys.spawn_process(kitten, 16 * MIB).unwrap();
    let p1 = sys.spawn_process(linux, 16 * MIB).unwrap();
    let p2 = sys.spawn_process(linux, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    let segid = sys.xpmem_make(exporter, buf, MIB, None).unwrap();
    let apid = sys.xpmem_get(p1, segid).unwrap();
    // Another process cannot use p1's grant.
    assert!(matches!(
        sys.xpmem_attach(p2, apid, 0, MIB),
        Err(XememError::PermissionDenied)
    ));
    assert!(matches!(sys.xpmem_release(p2, apid), Err(XememError::PermissionDenied)));
}

#[test]
fn window_validation() {
    let mut sys = sys2();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let exporter = sys.spawn_process(kitten, 16 * MIB).unwrap();
    let attacher = sys.spawn_process(linux, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    let segid = sys.xpmem_make(exporter, buf, MIB, None).unwrap();
    let apid = sys.xpmem_get(attacher, segid).unwrap();
    for (offset, len) in [(0u64, 0u64), (0, MIB + 1), (MIB, 4096), (4097, 4096)] {
        assert!(
            matches!(
                sys.xpmem_attach(attacher, apid, offset, len),
                Err(XememError::BadWindow { .. })
            ),
            "window ({offset}, {len}) must be rejected"
        );
    }
}

#[test]
fn enclave_memory_exhaustion_is_contained() {
    // A kitten enclave with a small partition: the second big process
    // fails to spawn, but the system and its other enclaves keep
    // working.
    let mut sys = SystemBuilder::new()
        .linux_management("linux", 4, 256 * MIB)
        .kitten_cokernel("tiny", 1, 32 * MIB)
        .build()
        .unwrap();
    let tiny = sys.enclave_by_name("tiny").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let p = sys.spawn_process(tiny, 8 * MIB).unwrap();
    assert!(matches!(
        sys.spawn_process(tiny, 64 * MIB),
        Err(XememError::Kernel(KernelError::Mem(_)))
    ));
    // The first process still exports and a Linux process still attaches.
    let buf = sys.alloc_buffer(p, MIB).unwrap();
    sys.write(p, buf, b"still alive").unwrap();
    let segid = sys.xpmem_make(p, buf, MIB, None).unwrap();
    let attacher = sys.spawn_process(linux, 8 * MIB).unwrap();
    let apid = sys.xpmem_get(attacher, segid).unwrap();
    let va = sys.xpmem_attach(attacher, apid, 0, MIB).unwrap();
    let mut got = [0u8; 11];
    sys.read(attacher, va, &mut got).unwrap();
    assert_eq!(&got, b"still alive");
}

#[test]
fn vm_ram_overcommit_rejected_at_build() {
    let err = SystemBuilder::new()
        .with_node(8, 256 * MIB)
        .linux_management("linux", 4, 128 * MIB)
        .palacios_vm("vm", "linux", 512 * MIB, MemoryMapKind::RbTree, GuestOs::Fwk)
        .build();
    assert!(matches!(err, Err(XememError::Topology(_))));
}

#[test]
fn detach_of_foreign_or_unattached_address_fails() {
    let mut sys = sys2();
    let linux = sys.enclave_by_name("linux").unwrap();
    let p = sys.spawn_process(linux, 16 * MIB).unwrap();
    assert!(sys.xpmem_detach(p, VirtAddr(0xDEAD_B000)).is_err());
    // A process's own buffer is not an attachment.
    let buf = sys.alloc_buffer(p, MIB).unwrap();
    assert!(sys.xpmem_detach(p, buf).is_err());
}

#[test]
fn reads_through_detached_mapping_fault() {
    let mut sys = sys2();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let exporter = sys.spawn_process(kitten, 16 * MIB).unwrap();
    let attacher = sys.spawn_process(linux, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    let segid = sys.xpmem_make(exporter, buf, MIB, None).unwrap();
    let apid = sys.xpmem_get(attacher, segid).unwrap();
    let va = sys.xpmem_attach(attacher, apid, 0, MIB).unwrap();
    sys.xpmem_detach(attacher, va).unwrap();
    let mut b = [0u8; 1];
    assert!(sys.read(attacher, va, &mut b).is_err());
    // Reattach works and yields a valid mapping again.
    let va2 = sys.xpmem_attach(attacher, apid, 0, MIB).unwrap();
    sys.read(attacher, va2, &mut b).unwrap();
}

#[test]
fn guest_ram_boundary_enforced_through_vm_data_path() {
    // A guest process cannot be given more memory than the VM has RAM:
    // the guest kernel's allocator is bounded by the memory map.
    let mut sys = SystemBuilder::new()
        .linux_management("linux", 4, 64 * MIB)
        .palacios_vm("vm", "linux", 48 * MIB, MemoryMapKind::RbTree, GuestOs::Fwk)
        .build()
        .unwrap();
    let vm = sys.enclave_by_name("vm").unwrap();
    let p = sys.spawn_process(vm, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(p, 64 * MIB).unwrap(); // VMA reserve succeeds…
    // …but faulting in more frames than guest RAM fails cleanly.
    let res = sys.write(p, buf, &vec![1u8; 64 * MIB as usize]);
    assert!(matches!(res, Err(XememError::Kernel(KernelError::Mem(_)))));
}
