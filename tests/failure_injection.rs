//! Integration tests: failure injection across the full stack — resource
//! exhaustion, stale identifiers, invalid windows, permission violations
//! and teardown ordering.

use xemem::trace_layer::ShardCounter;
use xemem::{
    CostModel, FaultPlan, GuestOs, MemoryMapKind, SimDuration, SimTime, SystemBuilder, TraceHandle,
    VirtAddr, XememError,
};
use xemem_mem::KernelError;

const MIB: u64 = 1 << 20;

fn sys2() -> xemem::System {
    SystemBuilder::new()
        .linux_management("linux", 4, 256 * MIB)
        .kitten_cokernel("kitten", 1, 128 * MIB)
        .build()
        .unwrap()
}

#[test]
fn stale_segid_after_remove_fails_everywhere() {
    let mut sys = sys2();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let exporter = sys.spawn_process(kitten, 16 * MIB).unwrap();
    let attacher = sys.spawn_process(linux, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    let segid = sys.xpmem_make(exporter, buf, MIB, None).unwrap();

    // A grant issued before removal…
    let apid = sys.xpmem_get(attacher, segid).unwrap();
    sys.xpmem_remove(exporter, segid).unwrap();

    // …no longer attaches: the owner's registration is gone.
    assert!(matches!(
        sys.xpmem_attach(attacher, apid, 0, MIB),
        Err(XememError::UnknownSegid(_))
    ));
    // And new gets fail at the name server.
    assert!(matches!(
        sys.xpmem_get(attacher, segid),
        Err(XememError::UnknownSegid(_))
    ));
    // Double remove fails.
    assert!(sys.xpmem_remove(exporter, segid).is_err());
}

#[test]
fn apid_is_process_scoped() {
    let mut sys = sys2();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let exporter = sys.spawn_process(kitten, 16 * MIB).unwrap();
    let p1 = sys.spawn_process(linux, 16 * MIB).unwrap();
    let p2 = sys.spawn_process(linux, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    let segid = sys.xpmem_make(exporter, buf, MIB, None).unwrap();
    let apid = sys.xpmem_get(p1, segid).unwrap();
    // Another process cannot use p1's grant.
    assert!(matches!(
        sys.xpmem_attach(p2, apid, 0, MIB),
        Err(XememError::PermissionDenied)
    ));
    assert!(matches!(
        sys.xpmem_release(p2, apid),
        Err(XememError::PermissionDenied)
    ));
}

#[test]
fn window_validation() {
    let mut sys = sys2();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let exporter = sys.spawn_process(kitten, 16 * MIB).unwrap();
    let attacher = sys.spawn_process(linux, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    let segid = sys.xpmem_make(exporter, buf, MIB, None).unwrap();
    let apid = sys.xpmem_get(attacher, segid).unwrap();
    for (offset, len) in [(0u64, 0u64), (0, MIB + 1), (MIB, 4096), (4097, 4096)] {
        assert!(
            matches!(
                sys.xpmem_attach(attacher, apid, offset, len),
                Err(XememError::BadWindow { .. })
            ),
            "window ({offset}, {len}) must be rejected"
        );
    }
}

#[test]
fn enclave_memory_exhaustion_is_contained() {
    // A kitten enclave with a small partition: the second big process
    // fails to spawn, but the system and its other enclaves keep
    // working.
    let mut sys = SystemBuilder::new()
        .linux_management("linux", 4, 256 * MIB)
        .kitten_cokernel("tiny", 1, 32 * MIB)
        .build()
        .unwrap();
    let tiny = sys.enclave_by_name("tiny").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let p = sys.spawn_process(tiny, 8 * MIB).unwrap();
    assert!(matches!(
        sys.spawn_process(tiny, 64 * MIB),
        Err(XememError::Kernel(KernelError::Mem(_)))
    ));
    // The first process still exports and a Linux process still attaches.
    let buf = sys.alloc_buffer(p, MIB).unwrap();
    sys.write(p, buf, b"still alive").unwrap();
    let segid = sys.xpmem_make(p, buf, MIB, None).unwrap();
    let attacher = sys.spawn_process(linux, 8 * MIB).unwrap();
    let apid = sys.xpmem_get(attacher, segid).unwrap();
    let va = sys.xpmem_attach(attacher, apid, 0, MIB).unwrap();
    let mut got = [0u8; 11];
    sys.read(attacher, va, &mut got).unwrap();
    assert_eq!(&got, b"still alive");
}

#[test]
fn vm_ram_overcommit_rejected_at_build() {
    let err = SystemBuilder::new()
        .with_node(8, 256 * MIB)
        .linux_management("linux", 4, 128 * MIB)
        .palacios_vm(
            "vm",
            "linux",
            512 * MIB,
            MemoryMapKind::RbTree,
            GuestOs::Fwk,
        )
        .build();
    assert!(matches!(err, Err(XememError::Topology(_))));
}

#[test]
fn detach_of_foreign_or_unattached_address_fails() {
    let mut sys = sys2();
    let linux = sys.enclave_by_name("linux").unwrap();
    let p = sys.spawn_process(linux, 16 * MIB).unwrap();
    assert!(sys.xpmem_detach(p, VirtAddr(0xDEAD_B000)).is_err());
    // A process's own buffer is not an attachment.
    let buf = sys.alloc_buffer(p, MIB).unwrap();
    assert!(sys.xpmem_detach(p, buf).is_err());
}

#[test]
fn reads_through_detached_mapping_fault() {
    let mut sys = sys2();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let exporter = sys.spawn_process(kitten, 16 * MIB).unwrap();
    let attacher = sys.spawn_process(linux, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    let segid = sys.xpmem_make(exporter, buf, MIB, None).unwrap();
    let apid = sys.xpmem_get(attacher, segid).unwrap();
    let va = sys.xpmem_attach(attacher, apid, 0, MIB).unwrap();
    sys.xpmem_detach(attacher, va).unwrap();
    let mut b = [0u8; 1];
    assert!(sys.read(attacher, va, &mut b).is_err());
    // Reattach works and yields a valid mapping again.
    let va2 = sys.xpmem_attach(attacher, apid, 0, MIB).unwrap();
    sys.read(attacher, va2, &mut b).unwrap();
}

// ---------------------------------------------------------------------
// Crash-consistent teardown: revocation, reaper, loans and grants
// ---------------------------------------------------------------------

#[test]
fn exporter_crash_revokes_attachment_and_reader_gets_source_gone() {
    let mut sys = sys2();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let baseline = sys.free_frames_of(kitten).unwrap();
    let exporter = sys.spawn_process(kitten, 16 * MIB).unwrap();
    let attacher = sys.spawn_process(linux, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    sys.write(exporter, buf, b"live data").unwrap();
    let segid = sys.xpmem_make(exporter, buf, MIB, None).unwrap();
    let apid = sys.xpmem_get(attacher, segid).unwrap();
    let va = sys.xpmem_attach(attacher, apid, 0, MIB).unwrap();
    let mut got = [0u8; 9];
    sys.read(attacher, va, &mut got).unwrap();
    assert_eq!(&got, b"live data");

    sys.crash_process(exporter).unwrap();

    // The previously-attached reader faults with SourceGone — it never
    // sees stale bytes through the dead mapping.
    assert!(matches!(
        sys.read(attacher, va, &mut got),
        Err(XememError::SourceGone)
    ));
    assert!(matches!(
        sys.write(attacher, va, b"x"),
        Err(XememError::SourceGone)
    ));
    // The revocation round and the reaper both left trace evidence...
    assert!(sys.events().with_prefix("crash:process").next().is_some());
    assert!(sys
        .events()
        .with_prefix("revoke:quarantine")
        .next()
        .is_some());
    assert!(sys.events().with_prefix("reap:slot").next().is_some());
    // ...the loan drained, and the quarantined frames went home: no leak.
    assert_eq!(sys.outstanding_loans(), 0);
    assert!(sys
        .events()
        .with_prefix("reap:frames-returned")
        .next()
        .is_some());
    assert_eq!(sys.free_frames_of(kitten).unwrap(), baseline);
    // The reaped mapping detaches cleanly (bookkeeping only); a second
    // detach reports the tombstone.
    sys.xpmem_detach(attacher, va).unwrap();
    assert!(matches!(
        sys.xpmem_detach(attacher, va),
        Err(XememError::AlreadyDetached(_))
    ));
}

#[test]
fn remove_revokes_remote_attachments_but_exporter_keeps_frames() {
    let mut sys = sys2();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let exporter = sys.spawn_process(kitten, 16 * MIB).unwrap();
    let attacher = sys.spawn_process(linux, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    sys.write(exporter, buf, b"v1").unwrap();
    let segid = sys.xpmem_make(exporter, buf, MIB, None).unwrap();
    let apid = sys.xpmem_get(attacher, segid).unwrap();
    let va = sys.xpmem_attach(attacher, apid, 0, MIB).unwrap();

    sys.xpmem_remove(exporter, segid).unwrap();

    // The remote attachment was reaped: access faults, never stale data.
    let mut b = [0u8; 2];
    assert!(matches!(
        sys.read(attacher, va, &mut b),
        Err(XememError::SourceGone)
    ));
    assert!(sys.events().with_prefix("revoke:").next().is_some());
    // The exporter is alive and keeps its frames — no loan was needed.
    assert_eq!(sys.outstanding_loans(), 0);
    sys.read(exporter, buf, &mut b).unwrap();
    assert_eq!(&b, b"v1");
    // It can re-export the same buffer immediately.
    let segid2 = sys.xpmem_make(exporter, buf, MIB, None).unwrap();
    assert_ne!(segid, segid2);
    sys.xpmem_detach(attacher, va).unwrap();
}

#[test]
fn exporter_graceful_exit_drives_revocation() {
    let mut sys = sys2();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let baseline = sys.free_frames_of(kitten).unwrap();
    let exporter = sys.spawn_process(kitten, 16 * MIB).unwrap();
    let attacher = sys.spawn_process(linux, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    let segid = sys.xpmem_make(exporter, buf, MIB, Some("output")).unwrap();
    let apid = sys.xpmem_get(attacher, segid).unwrap();
    let va = sys.xpmem_attach(attacher, apid, 0, MIB).unwrap();

    sys.exit_process(exporter).unwrap();

    let mut b = [0u8; 1];
    assert!(matches!(
        sys.read(attacher, va, &mut b),
        Err(XememError::SourceGone)
    ));
    // Graceful exit frees everything the process owned (revocation ran
    // before the kernel reclaimed the frames), and the name is free again.
    assert_eq!(sys.free_frames_of(kitten).unwrap(), baseline);
    assert_eq!(sys.outstanding_loans(), 0);
    assert!(matches!(
        sys.xpmem_search(attacher, "output"),
        Err(XememError::UnknownName(_))
    ));
}

#[test]
fn release_and_attacher_exit_drop_exporter_side_grants() {
    let mut sys = sys2();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let exporter = sys.spawn_process(kitten, 16 * MIB).unwrap();
    let a1 = sys.spawn_process(linux, 16 * MIB).unwrap();
    let a2 = sys.spawn_process(linux, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    let segid = sys.xpmem_make(exporter, buf, MIB, None).unwrap();

    let apid1 = sys.xpmem_get(a1, segid).unwrap();
    let apid2 = sys.xpmem_get(a2, segid).unwrap();
    let _ = apid2;
    assert_eq!(sys.outstanding_grants(kitten, segid), 2);

    // Explicit release drops one refcount; releasing again is a clean,
    // idempotent error rather than a panic or a silent success.
    sys.xpmem_release(a1, apid1).unwrap();
    assert_eq!(sys.outstanding_grants(kitten, segid), 1);
    assert!(matches!(
        sys.xpmem_release(a1, apid1),
        Err(XememError::AlreadyReleased(_))
    ));

    // An attacher exiting without cleanup no longer leaks its grant.
    sys.exit_process(a2).unwrap();
    assert_eq!(sys.outstanding_grants(kitten, segid), 0);
    sys.xpmem_remove(exporter, segid).unwrap();
}

#[test]
fn destroy_enclave_cascades_to_hosted_vms_and_protects_name_server() {
    let mut sys = SystemBuilder::new()
        .linux_management("linux", 4, 256 * MIB)
        .kitten_cokernel("kitten", 2, 192 * MIB)
        .palacios_vm(
            "vm",
            "kitten",
            64 * MIB,
            MemoryMapKind::RbTree,
            GuestOs::Lwk,
        )
        .build()
        .unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let vm = sys.enclave_by_name("vm").unwrap();
    let exporter = sys.spawn_process(vm, 8 * MIB).unwrap();
    let reader = sys.spawn_process(linux, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    let segid = sys.xpmem_make(exporter, buf, MIB, None).unwrap();
    let apid = sys.xpmem_get(reader, segid).unwrap();
    let va = sys.xpmem_attach(reader, apid, 0, MIB).unwrap();

    // The name-server enclave is not destroyable.
    assert!(matches!(
        sys.destroy_enclave(linux),
        Err(XememError::Topology(_))
    ));

    // Destroying the co-kernel takes its hosted VM down first, revoking
    // the VM's exports on the way out.
    sys.destroy_enclave(kitten).unwrap();
    assert!(!sys.enclave_alive(kitten));
    assert!(!sys.enclave_alive(vm));
    assert!(sys
        .events()
        .with_prefix("crash:enclave:vm")
        .next()
        .is_some());
    let mut b = [0u8; 1];
    assert!(matches!(
        sys.read(reader, va, &mut b),
        Err(XememError::SourceGone)
    ));

    // Dead enclaves reject everything, including a second destroy.
    assert!(matches!(
        sys.spawn_process(kitten, MIB),
        Err(XememError::EnclaveDead(_))
    ));
    assert!(matches!(
        sys.destroy_enclave(kitten),
        Err(XememError::EnclaveDead(_))
    ));
    assert!(matches!(
        sys.xpmem_get(exporter, segid),
        Err(XememError::EnclaveDead(_))
    ));

    // The surviving enclave still works end to end.
    let p = sys.spawn_process(linux, 8 * MIB).unwrap();
    let lbuf = sys.alloc_buffer(p, MIB).unwrap();
    sys.write(p, lbuf, b"alive").unwrap();
}

#[test]
fn vm_attacher_reap_is_delivered_via_guest_irq() {
    let mut sys = SystemBuilder::new()
        .linux_management("linux", 4, 256 * MIB)
        .palacios_vm("vm", "linux", 64 * MIB, MemoryMapKind::RbTree, GuestOs::Fwk)
        .build()
        .unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let vm = sys.enclave_by_name("vm").unwrap();
    let exporter = sys.spawn_process(linux, 16 * MIB).unwrap();
    let guest = sys.spawn_process(vm, 8 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    let segid = sys.xpmem_make(exporter, buf, MIB, None).unwrap();
    let apid = sys.xpmem_get(guest, segid).unwrap();
    let va = sys.xpmem_attach(guest, apid, 0, MIB).unwrap();

    let irqs_before = sys.vmm_mut(vm).unwrap().pci().irqs_raised();
    sys.xpmem_remove(exporter, segid).unwrap();
    // The revocation notice reaches the guest as a virtual-PCI interrupt
    // and the guest-side reaper unmaps the attachment.
    assert!(sys.vmm_mut(vm).unwrap().pci().irqs_raised() > irqs_before);
    let mut b = [0u8; 1];
    assert!(matches!(
        sys.read(guest, va, &mut b),
        Err(XememError::SourceGone)
    ));
}

// ---------------------------------------------------------------------
// Fault injection: scheduled crashes, outages and lossy links
// ---------------------------------------------------------------------

#[test]
fn injected_exporter_kill_mid_attach_fails_cleanly() {
    // Kill the exporter at a virtual instant that lands inside the attach
    // protocol (between the request hop and the reply).
    const T: u64 = 1_000_000;
    let plan = FaultPlan::new().kill_process(SimTime::from_nanos(T), 1, 1);
    let mut sys = SystemBuilder::new()
        .linux_management("linux", 4, 256 * MIB)
        .kitten_cokernel("kitten", 1, 128 * MIB)
        .with_fault_plan(plan, 42)
        .build()
        .unwrap();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    assert_eq!(kitten.0, 1, "plan targets the kitten slot");
    let baseline = sys.free_frames_of(kitten).unwrap();
    let exporter = sys.spawn_process(kitten, 16 * MIB).unwrap();
    assert_eq!(exporter.pid.0, 1, "plan targets the first kitten pid");
    let attacher = sys.spawn_process(linux, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    let segid = sys.xpmem_make(exporter, buf, MIB, None).unwrap();
    let apid = sys.xpmem_get(attacher, segid).unwrap();

    // Step onto the instant just before the scheduled kill, then attach:
    // the fault fires between protocol steps and the attach fails
    // cleanly — no partial mapping is installed.
    sys.clock().advance_to(SimTime::from_nanos(T - 1));
    assert!(matches!(
        sys.xpmem_attach(attacher, apid, 0, MIB),
        Err(XememError::UnknownSegid(_) | XememError::EnclaveDead(_))
    ));
    assert!(sys.events().with_prefix("crash:process").next().is_some());
    assert_eq!(sys.outstanding_loans(), 0);
    assert_eq!(sys.free_frames_of(kitten).unwrap(), baseline);

    // The enclave survived its process; a fresh export cycle works.
    let exporter2 = sys.spawn_process(kitten, 16 * MIB).unwrap();
    let buf2 = sys.alloc_buffer(exporter2, MIB).unwrap();
    sys.write(exporter2, buf2, b"redo").unwrap();
    let segid2 = sys.xpmem_make(exporter2, buf2, MIB, None).unwrap();
    let apid2 = sys.xpmem_get(attacher, segid2).unwrap();
    let va = sys.xpmem_attach(attacher, apid2, 0, MIB).unwrap();
    let mut got = [0u8; 4];
    sys.read(attacher, va, &mut got).unwrap();
    assert_eq!(&got, b"redo");
}

#[test]
fn injected_enclave_crash_mid_attach_reports_dead_enclave() {
    const T: u64 = 1_000_000;
    let plan = FaultPlan::new().crash_enclave(SimTime::from_nanos(T), 1);
    let mut sys = SystemBuilder::new()
        .linux_management("linux", 4, 256 * MIB)
        .kitten_cokernel("kitten", 1, 128 * MIB)
        .with_fault_plan(plan, 42)
        .build()
        .unwrap();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    assert_eq!(kitten.0, 1);
    let exporter = sys.spawn_process(kitten, 16 * MIB).unwrap();
    let attacher = sys.spawn_process(linux, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    let segid = sys.xpmem_make(exporter, buf, MIB, None).unwrap();
    let apid = sys.xpmem_get(attacher, segid).unwrap();

    sys.clock().advance_to(SimTime::from_nanos(T - 1));
    assert!(matches!(
        sys.xpmem_attach(attacher, apid, 0, MIB),
        Err(XememError::EnclaveDead(_) | XememError::UnknownSegid(_))
    ));
    assert!(sys
        .events()
        .with_prefix("crash:enclave:kitten")
        .next()
        .is_some());
    assert!(!sys.enclave_alive(kitten));
    assert!(matches!(
        sys.spawn_process(kitten, MIB),
        Err(XememError::EnclaveDead(_))
    ));
    // The management enclave and name server keep working.
    let p = sys.spawn_process(linux, 8 * MIB).unwrap();
    let b2 = sys.alloc_buffer(p, MIB).unwrap();
    assert!(sys.xpmem_make(p, b2, MIB, Some("post-crash")).is_ok());
}

#[test]
fn name_server_outage_lease_serves_and_backoff_recovery() {
    const START: u64 = 1_000_000_000;
    const DUR: u64 = 100_000; // 100 µs — inside the default retry budget
    let plan = FaultPlan::new()
        .name_server_outage(SimTime::from_nanos(START), SimDuration::from_nanos(DUR));
    let mut sys = SystemBuilder::new()
        .linux_management("linux", 4, 256 * MIB)
        .kitten_cokernel("kitten", 1, 128 * MIB)
        .with_fault_plan(plan, 9)
        .build()
        .unwrap();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let exporter = sys.spawn_process(linux, 16 * MIB).unwrap();
    let consumer = sys.spawn_process(kitten, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    sys.write(exporter, buf, b"field0").unwrap();
    sys.xpmem_make(exporter, buf, MIB, Some("field")).unwrap();
    // Renew the consumer's leases just before the window: leases run for
    // 200 µs of virtual time, so grants taken 50 µs before the outage
    // are still live inside it.
    sys.clock().advance_to(SimTime::from_nanos(START - 50_000));
    let segid = sys.xpmem_search(consumer, "field").unwrap();
    let warm = sys.xpmem_get(consumer, segid).unwrap();
    sys.xpmem_release(consumer, warm).unwrap();
    let cbuf = sys.alloc_buffer(consumer, MIB).unwrap();

    // Jump into the outage window.
    sys.clock().advance_to(SimTime::from_nanos(START + 1_000));

    // Lookups within the lease term never touch the dead server...
    assert_eq!(sys.xpmem_search(consumer, "field").unwrap(), segid);
    assert!(sys.events().with_prefix("ns:lease:search").next().is_some());
    let apid = sys.xpmem_get(consumer, segid).unwrap();
    assert!(sys.events().with_prefix("ns:lease:get").next().is_some());

    // ...while mutations ride out the outage with exponential backoff.
    let segid2 = sys.xpmem_make(consumer, cbuf, MIB, Some("late")).unwrap();
    assert!(sys.events().with_prefix("ns:outage").next().is_some());
    assert!(sys.events().with_prefix("ns:retry:").next().is_some());
    assert!(
        sys.clock().now() >= SimTime::from_nanos(START + DUR),
        "backoff waited out the outage"
    );

    // After recovery everything behaves normally, including the grant
    // issued from the leased cache.
    let va = sys.xpmem_attach(consumer, apid, 0, MIB).unwrap();
    let mut got = [0u8; 6];
    sys.read(consumer, va, &mut got).unwrap();
    assert_eq!(&got, b"field0");
    assert_eq!(sys.xpmem_search(consumer, "late").unwrap(), segid2);
}

#[test]
fn name_server_outage_exhausts_bounded_retry_budget() {
    // A tiny retry budget against a long outage: the caller gets a clean
    // NameServerUnavailable instead of hanging forever.
    let plan =
        FaultPlan::new().name_server_outage(SimTime::from_nanos(0), SimDuration::from_millis(10));
    let cost = CostModel {
        ns_retry_base_ns: 1_000,
        ns_retry_max_attempts: 3,
        ..CostModel::default()
    };
    let mut sys = SystemBuilder::new()
        .linux_management("linux", 4, 256 * MIB)
        .kitten_cokernel("kitten", 1, 128 * MIB)
        .with_cost(cost)
        .with_fault_plan(plan, 1)
        .build()
        .unwrap();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let p = sys.spawn_process(kitten, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(p, MIB).unwrap();
    // The error context surfaces what the retry loop actually did: 3
    // attempts sleeping 1000 << k ns each (backoff = 1+2+4 µs).
    match sys.xpmem_make(p, buf, MIB, None) {
        Err(XememError::NameServerUnavailable {
            shard,
            attempts,
            backoff,
        }) => {
            assert_eq!(shard, 0);
            assert_eq!(attempts, 3);
            assert_eq!(backoff, SimDuration::from_nanos(1_000 + 2_000 + 4_000));
        }
        other => panic!("expected NameServerUnavailable, got {other:?}"),
    }
    assert!(sys.events().with_prefix("ns:unavailable").next().is_some());
    // An uncached lookup during the outage fails the same way.
    assert!(matches!(
        sys.xpmem_search(p, "nothing-cached"),
        Err(XememError::NameServerUnavailable { .. })
    ));
    // Once the outage passes, the same operation succeeds.
    sys.clock().advance_to(SimTime::from_nanos(11_000_000));
    assert!(sys.xpmem_make(p, buf, MIB, None).is_ok());
}

#[test]
fn lossy_links_retransmit_and_duplicate_without_breaking_protocol() {
    const WINDOW: u64 = 50_000_000;
    let plan = FaultPlan::new()
        .drop_messages(
            SimTime::from_nanos(0),
            SimDuration::from_nanos(WINDOW),
            0.35,
        )
        .duplicate_messages(SimTime::from_nanos(0), SimDuration::from_nanos(WINDOW), 1.0);
    let mut sys = SystemBuilder::new()
        .linux_management("linux", 4, 256 * MIB)
        .kitten_cokernel("kitten", 1, 128 * MIB)
        .with_fault_plan(plan, 1234)
        .build()
        .unwrap();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let exporter = sys.spawn_process(kitten, 16 * MIB).unwrap();
    let attacher = sys.spawn_process(linux, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    sys.write(exporter, buf, b"lossy").unwrap();
    // Every cross-enclave command still completes: drops cost bounded
    // retransmissions (virtual timeouts), duplicates are harmless.
    let segid = sys.xpmem_make(exporter, buf, MIB, Some("noisy")).unwrap();
    let found = sys.xpmem_search(attacher, "noisy").unwrap();
    assert_eq!(found, segid);
    let apid = sys.xpmem_get(attacher, segid).unwrap();
    let va = sys.xpmem_attach(attacher, apid, 0, MIB).unwrap();
    let mut got = [0u8; 5];
    sys.read(attacher, va, &mut got).unwrap();
    assert_eq!(&got, b"lossy");
    assert!(sys.events().with_prefix("fault:dup").next().is_some());
    assert!(sys.events().with_prefix("fault:drop:").next().is_some());
}

/// Four enclaves with the namespace sharded 2 × 2: shard 0 is led by
/// slot 0 (linux, the name-server slot) with follower slot 2, shard 1
/// by slot 1 (kitten0) with follower slot 3 (kitten2).
fn sharded4(plan: Option<FaultPlan>, tracer: Option<TraceHandle>) -> xemem::System {
    let mut b = SystemBuilder::new()
        .linux_management("linux", 4, 256 * MIB)
        .kitten_cokernel("kitten0", 1, 64 * MIB)
        .kitten_cokernel("kitten1", 1, 64 * MIB)
        .kitten_cokernel("kitten2", 1, 64 * MIB)
        .name_service_shards(2, 2);
    if let Some(plan) = plan {
        b = b.with_fault_plan(plan, 7);
    }
    if let Some(tracer) = tracer {
        b = b.with_tracer(tracer);
    }
    b.build().unwrap()
}

/// The first name with the given `tag` prefix that consistent-hashes to
/// `shard` (the ring is a pure function of the name, so tests can probe
/// deterministically).
fn name_on_shard(sys: &xemem::System, shard: usize, tag: &str) -> String {
    (0..1024)
        .map(|i| format!("{tag}{i}"))
        .find(|n| sys.name_service().shard_of_name(n) == shard)
        .expect("no name hashed to the shard in 1024 probes")
}

#[test]
fn shard_scoped_outage_only_stalls_its_own_shard() {
    const START: u64 = 1_000_000;
    const DUR: u64 = 100_000;
    let tracer = TraceHandle::enabled();
    let plan = FaultPlan::new().name_server_shard_outage(
        SimTime::from_nanos(START),
        1,
        SimDuration::from_nanos(DUR),
    );
    let mut sys = sharded4(Some(plan), Some(tracer.clone()));
    let linux = sys.enclave_by_name("linux").unwrap();
    let kitten1 = sys.enclave_by_name("kitten1").unwrap();
    let name0 = name_on_shard(&sys, 0, "a");
    let name1 = name_on_shard(&sys, 1, "b");
    let exporter = sys.spawn_process(linux, 16 * MIB).unwrap();
    let consumer = sys.spawn_process(kitten1, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    let seg0 = sys.xpmem_make(exporter, buf, MIB, Some(&name0)).unwrap();
    let buf2 = sys.alloc_buffer(exporter, MIB).unwrap();
    let seg1 = sys.xpmem_make(exporter, buf2, MIB, Some(&name1)).unwrap();

    // Inside the outage window, a lookup routed to the dark shard backs
    // off until the shard recovers...
    sys.clock().advance_to(SimTime::from_nanos(START + 1_000));
    assert_eq!(sys.xpmem_search(consumer, &name1).unwrap(), seg1);
    assert!(
        sys.clock().now() >= SimTime::from_nanos(START + DUR),
        "the shard-1 lookup should have ridden out the outage"
    );
    // ...while the sibling shard keeps answering without a single retry.
    assert_eq!(sys.xpmem_search(consumer, &name0).unwrap(), seg0);
    assert!(sys
        .events()
        .with_prefix("ns:outage:shard1")
        .next()
        .is_some());
    assert!(sys
        .events()
        .with_prefix("ns:retry:shard1:")
        .next()
        .is_some());
    assert!(sys.events().with_prefix("ns:retry:shard0").next().is_none());

    // Satellite: retry/backoff accounting is attributed to the sick
    // shard in the metrics registry, not smeared service-wide.
    assert!(tracer.shard_counter(1, ShardCounter::Retries) > 0);
    assert_eq!(tracer.shard_counter(0, ShardCounter::Retries), 0);
    assert!(tracer.shard_counter(1, ShardCounter::BackoffNs) > 0);
    tracer.audit().expect("conservation audit");
}

#[test]
fn leader_crash_fails_over_and_fences_outstanding_leases() {
    let mut sys = sharded4(None, None);
    let linux = sys.enclave_by_name("linux").unwrap();
    let kitten0 = sys.enclave_by_name("kitten0").unwrap();
    let kitten1 = sys.enclave_by_name("kitten1").unwrap();
    assert_eq!(sys.name_service().leader_slot(1), Some(kitten0.0));
    let name = name_on_shard(&sys, 1, "seg");
    let exporter = sys.spawn_process(linux, 16 * MIB).unwrap();
    let consumer = sys.spawn_process(kitten1, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    let segid = sys.xpmem_make(exporter, buf, MIB, Some(&name)).unwrap();

    // The consumer takes a lease on the name from shard 1's leader.
    assert_eq!(sys.xpmem_search(consumer, &name).unwrap(), segid);

    // Let the registration replicate, then kill the leader. The shard
    // promotes its follower, bumps the epoch and goes dark for the
    // election timeout.
    let t = sys.clock().now();
    sys.clock().advance_to(t + SimDuration::from_nanos(50_000));
    sys.destroy_enclave(kitten0).unwrap();
    assert!(sys
        .events()
        .with_prefix("ns:failover:shard1:epoch1")
        .next()
        .is_some());
    assert_eq!(sys.name_service().epoch(1), 1);
    assert_eq!(sys.name_service().failover_count(1), 1);
    assert_eq!(sys.name_service().leader_slot(1), Some(3));

    // The consumer's lease is still inside its 200 µs validity window,
    // but the epoch fence must keep it from being served: the lookup
    // re-routes, waits out the election, and gets the answer from the
    // replicated map on the new leader.
    assert_eq!(sys.xpmem_search(consumer, &name).unwrap(), segid);
    assert!(sys
        .events()
        .with_prefix("ns:lease-expired:search")
        .next()
        .is_some());
    assert!(sys
        .events()
        .with_prefix("ns:retry:shard1:")
        .next()
        .is_some());
    assert!(sys.events().with_prefix("ns:lease:search").next().is_none());
}

#[test]
fn dead_leader_loses_unreplicated_registrations() {
    let mut sys = sharded4(None, None);
    let linux = sys.enclave_by_name("linux").unwrap();
    let kitten0 = sys.enclave_by_name("kitten0").unwrap();
    let kitten1 = sys.enclave_by_name("kitten1").unwrap();
    let name = name_on_shard(&sys, 1, "fresh");
    let exporter = sys.spawn_process(linux, 16 * MIB).unwrap();
    let consumer = sys.spawn_process(kitten1, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    let segid = sys.xpmem_make(exporter, buf, MIB, Some(&name)).unwrap();

    // Kill shard 1's leader before the registration's replication-lag
    // horizon passes: the insert never reached the follower and is lost
    // in the failover.
    sys.destroy_enclave(kitten0).unwrap();
    assert!(sys
        .events()
        .with_prefix("ns:failover:shard1:lost")
        .next()
        .is_some());

    // After the election the new leader simply does not know the name.
    let t = sys.clock().now();
    sys.clock().advance_to(t + SimDuration::from_nanos(100_000));
    assert!(matches!(
        sys.xpmem_search(consumer, &name),
        Err(XememError::UnknownName(_))
    ));
    // The exporter's withdrawal of the lost registration is tolerated
    // (and traced), not an error: the exporter keeps its frames and the
    // segment is gone everywhere.
    sys.xpmem_remove(exporter, segid).unwrap();
    assert!(sys
        .events()
        .with_prefix("ns:lost-registration:")
        .next()
        .is_some());
    assert_eq!(sys.outstanding_loans(), 0);
}

#[test]
fn remove_revokes_live_leases_before_expiry() {
    let mut sys = sharded4(None, None);
    let linux = sys.enclave_by_name("linux").unwrap();
    let kitten1 = sys.enclave_by_name("kitten1").unwrap();
    let name = name_on_shard(&sys, 0, "rm");
    let exporter = sys.spawn_process(linux, 16 * MIB).unwrap();
    let consumer = sys.spawn_process(kitten1, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    let segid = sys.xpmem_make(exporter, buf, MIB, Some(&name)).unwrap();

    // The consumer takes name and owner leases...
    assert_eq!(sys.xpmem_search(consumer, &name).unwrap(), segid);
    let apid = sys.xpmem_get(consumer, segid).unwrap();
    sys.xpmem_release(consumer, apid).unwrap();

    // ...and the remove races them: both leases are still inside their
    // 200 µs validity windows when the exporter withdraws the segment,
    // so the leader revokes them eagerly rather than letting them run
    // out.
    sys.xpmem_remove(exporter, segid).unwrap();
    assert!(sys
        .events()
        .with_prefix(&format!("ns:lease-revoke:{segid}:slot{}", kitten1.0))
        .next()
        .is_some());

    // Within what would have been the lease window, neither lookup
    // serves the revoked cache entry.
    assert!(matches!(
        sys.xpmem_search(consumer, &name),
        Err(XememError::UnknownName(_))
    ));
    assert!(matches!(
        sys.xpmem_get(consumer, segid),
        Err(XememError::UnknownSegid(_))
    ));
    assert!(sys.events().with_prefix("ns:lease:").next().is_none());
}

#[test]
fn guest_ram_boundary_enforced_through_vm_data_path() {
    // A guest process cannot be given more memory than the VM has RAM:
    // the guest kernel's allocator is bounded by the memory map.
    let mut sys = SystemBuilder::new()
        .linux_management("linux", 4, 64 * MIB)
        .palacios_vm("vm", "linux", 48 * MIB, MemoryMapKind::RbTree, GuestOs::Fwk)
        .build()
        .unwrap();
    let vm = sys.enclave_by_name("vm").unwrap();
    let p = sys.spawn_process(vm, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(p, 64 * MIB).unwrap(); // VMA reserve succeeds…
                                                      // …but faulting in more frames than guest RAM fails cleanly.
    let res = sys.write(p, buf, &vec![1u8; 64 * MIB as usize]);
    assert!(matches!(res, Err(XememError::Kernel(KernelError::Mem(_)))));
}

// ---------------------------------------------------------------------
// Buffer-pool crash-safe reclamation (xemem-pool over the fault injector)
// ---------------------------------------------------------------------

/// A scheduled pool-consumer crash mid-hold: the exporter-side reaper
/// sweeps the dead consumer's outstanding references exactly once, the
/// pool ends leak-free, and the surviving consumer is untouched.
#[test]
fn pool_consumer_crash_sweeps_outstanding_slots_exactly_once() {
    use xemem_pool::{BufferPool, Holder};

    let tracer = TraceHandle::enabled();
    let plan = FaultPlan::new()
        .pool_capacity(8)
        // Enclave slot 1 (kitten0) crashes at t=500 µs holding pool refs.
        .pool_consumer_crash(SimTime::from_nanos(500_000), 1, 3);
    let mut sys = SystemBuilder::new()
        .linux_management("linux", 4, 256 * MIB)
        .kitten_cokernel("kitten0", 1, 64 * MIB)
        .kitten_cokernel("kitten1", 1, 64 * MIB)
        .with_fault_plan(plan, 11)
        .with_tracer(tracer.clone())
        .build()
        .unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let k0 = sys.enclave_by_name("kitten0").unwrap();
    let k1 = sys.enclave_by_name("kitten1").unwrap();
    let producer = sys.spawn_process(linux, 32 * MIB).unwrap();
    let doomed = sys.spawn_process(k0, 2 * MIB).unwrap();
    let survivor = sys.spawn_process(k1, 2 * MIB).unwrap();

    let t = sys.clock().now();
    let (mut pool, t) =
        BufferPool::create_at(&mut sys, producer, 8, 4096, Some("fi-pool"), 4, t).unwrap();
    let (dead_c, t) = pool.join_at(&mut sys, doomed, t).unwrap();
    let (live_c, t) = pool.join_at(&mut sys, survivor, t).unwrap();

    // The doomed consumer holds one consumed slot and one ring entry;
    // the survivor holds one consumed slot.
    let (g, t) = pool.acquire_at(t).unwrap();
    let t = pool.publish_at(dead_c, g, t).unwrap();
    let (held, t) = pool.consume_at(dead_c, t).unwrap();
    let _abandoned = held.unwrap();
    let (g, t) = pool.acquire_at(t).unwrap();
    let t = pool.publish_at(dead_c, g, t).unwrap();
    let (g, t) = pool.acquire_at(t).unwrap();
    let t = pool.publish_at(live_c, g, t).unwrap();
    let (live_guard, t) = pool.consume_at(live_c, t).unwrap();
    let live_guard = live_guard.unwrap();
    assert_eq!(pool.free_slots(), 5);

    // Cross the fault horizon and deliver the scheduled crash.
    sys.clock().advance_to(SimTime::from_nanos(600_000).max(t));
    sys.deliver_pending_faults();
    assert!(!sys.enclave_alive(k0));
    assert!(sys
        .events()
        .with_prefix("crash:enclave:kitten0")
        .next()
        .is_some());

    // One sweep reclaims both of the dead consumer's references…
    let now = sys.clock().now();
    let (swept, t) = pool.sweep_at(&mut sys, now);
    assert_eq!(swept, 2);
    assert!(!pool.consumer_alive(dead_c));
    assert_eq!(pool.free_slots(), 7);
    // …and a second sweep finds nothing left (exactly-once).
    let (again, t) = pool.sweep_at(&mut sys, t);
    assert_eq!(again, 0);
    assert_eq!(pool.free_slots(), 7);

    // The survivor's hold was never touched: its generation still
    // matches and release succeeds normally.
    let t = pool
        .release_at(Holder::Consumer(live_c.0), live_guard, t)
        .unwrap();
    let _ = t;
    pool.leak_check().unwrap();
    tracer.audit().expect("conservation");
}

/// Pool fault-plan validation mirrors the shard-validation precedent:
/// out-of-range consumer slots, out-of-range pool slots, and plans that
/// never declared a capacity are all rejected with descriptive errors.
#[test]
fn pool_fault_plans_are_validated_like_shard_plans() {
    // Consumer enclave slot out of range.
    let plan =
        FaultPlan::new()
            .pool_capacity(8)
            .pool_consumer_crash(SimTime::from_nanos(100), 6, 0);
    let err = plan.validate(3, 1).unwrap_err();
    assert!(err.contains("slot 6"), "got: {err}");

    // Pool slot index beyond the declared capacity.
    let plan =
        FaultPlan::new()
            .pool_capacity(8)
            .pool_consumer_crash(SimTime::from_nanos(100), 1, 8);
    let err = plan.validate(3, 1).unwrap_err();
    assert!(err.contains("pool slot 8"), "got: {err}");

    // No declared capacity at all.
    let plan = FaultPlan::new().pool_consumer_crash(SimTime::from_nanos(100), 1, 0);
    let err = plan.validate(3, 1).unwrap_err();
    assert!(
        err.contains("without declaring a pool capacity"),
        "got: {err}"
    );

    // The well-formed variant passes.
    FaultPlan::new()
        .pool_capacity(8)
        .pool_consumer_crash(SimTime::from_nanos(100), 1, 7)
        .validate(3, 1)
        .unwrap();
}
