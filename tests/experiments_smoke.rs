//! Integration tests: every figure/table experiment runs end to end in
//! smoke mode, and the qualitative claims the paper makes about each one
//! hold on the smoke-scale output.

use xemem_bench::{ablations, fig5, fig6, fig7, fig8, fig9, table2};
use xemem_cluster::NodeConfig;
use xemem_workloads::insitu::AttachModel;

#[test]
fn fig5_xemem_beats_rdma_at_every_size() {
    let rows = fig5::run(&[4 << 20, 16 << 20], 5).unwrap();
    for r in &rows {
        assert!(
            r.attach_gbps > 3.0 * r.rdma_gbps,
            "attach {} vs rdma {}",
            r.attach_gbps,
            r.rdma_gbps
        );
        assert!(r.attach_read_gbps < r.attach_gbps);
    }
    // Scalability with size: throughput within 5% across sizes.
    let spread = (rows[0].attach_gbps - rows[1].attach_gbps).abs() / rows[0].attach_gbps;
    assert!(
        spread < 0.05,
        "attach throughput not flat across sizes: {spread}"
    );
}

#[test]
fn fig6_centralized_name_server_scales() {
    let cells = fig6::run(&[1, 2, 4], &[16 << 20], false).unwrap();
    let at = |n: u32| cells.iter().find(|c| c.enclaves == n).unwrap().gbps;
    assert!(at(2) < at(1), "expected the 1→2 dip");
    assert!((at(4) - at(2)).abs() / at(2) < 0.06, "2→4 must stay flat");
}

#[test]
fn table2_vm_penalty_emerges_from_the_rb_tree() {
    let rows = table2::run(32 << 20, 3).unwrap();
    let native = rows[0].gbps;
    let vm = rows[1].gbps;
    let recovered = rows[1].gbps_without_rb.unwrap();
    assert!(vm < native / 2.2, "VM attach must be ≥2.2x slower");
    assert!(
        recovered > 1.7 * vm,
        "removing rb time must roughly double throughput"
    );
    assert!(
        rows[2].gbps > 0.75 * native,
        "guest exports stay near native"
    );
}

#[test]
fn fig7_detour_magnitude_tracks_region_size() {
    let series = fig7::run(&[4 << 10, 2 << 20, 32 << 20], 4, 3).unwrap();
    let max_attach = |i: usize| {
        series[i]
            .samples
            .iter()
            .filter(|s| s.kind == "AttachService")
            .map(|s| s.detour_us)
            .fold(0.0f64, f64::max)
    };
    assert_eq!(max_attach(0), 0.0);
    assert!(max_attach(1) > 20.0);
    // 32 MB has 16x the pages of 2 MB; the detour must scale with it.
    assert!(
        max_attach(2) > 12.0 * max_attach(1),
        "detours must scale ~linearly with pages"
    );
}

#[test]
fn fig8_isolation_beats_colocation() {
    let bars = fig8::run(3, true).unwrap();
    let f = |c, e, a| fig8::find(&bars, c, e, a).mean_secs;
    // Kitten-simulation beats Linux/Linux under both execution models.
    assert!(
        f("Kitten/Linux", "Asynchronous", "one-time")
            < f("Linux/Linux", "Asynchronous", "one-time")
    );
    assert!(
        f("Kitten/Linux", "Synchronous", "one-time") < f("Linux/Linux", "Synchronous", "one-time")
    );
    // Linux/Linux variance exceeds the multi-enclave configurations'.
    let linux_sd = fig8::find(&bars, "Linux/Linux", "Synchronous", "one-time").stddev_secs;
    let kitten_sd = fig8::find(&bars, "Kitten/Linux", "Synchronous", "one-time").stddev_secs;
    assert!(linux_sd > kitten_sd);
}

#[test]
fn fig9_weak_scaling_divergence() {
    let points = fig9::run(&[1, 8], 3, true).unwrap();
    let f = |n, c| fig9::find(&points, n, c, "one-time").mean_secs;
    let linux_growth = f(8, "Linux Only") / f(1, "Linux Only");
    let multi_growth = f(8, "Multi Enclave") / f(1, "Multi Enclave");
    assert!(
        linux_growth > multi_growth,
        "linux grew {linux_growth}, multi grew {multi_growth}"
    );
    assert!(multi_growth < 1.05, "multi-enclave must stay nearly flat");
}

#[test]
fn fig9_recurring_crossover() {
    // Paper: with recurring attachments the Linux-only configuration
    // wins at one node (no VM attach overhead) but loses at scale. The
    // smoke workload is too short for noise statistics, so run a longer
    // scaled-down configuration.
    let run = |nodes: u32, config: NodeConfig| {
        let mut cfg = xemem_cluster::ClusterConfig::smoke(nodes, config, AttachModel::Recurring);
        cfg.iterations = 400;
        cfg.comm_every = 50;
        xemem_cluster::run_cluster(&cfg)
            .unwrap()
            .completion
            .as_secs_f64()
    };
    assert!(run(1, NodeConfig::LinuxOnly) < run(1, NodeConfig::MultiEnclave));
    assert!(run(8, NodeConfig::LinuxOnly) > run(8, NodeConfig::MultiEnclave));
}

#[test]
fn ablation_results_ordered_as_designed() {
    let rows = ablations::memmap::run(4 << 20, 2).unwrap();
    let g = |prefix: &str| {
        rows.iter()
            .find(|r| r.variant.starts_with(prefix))
            .unwrap()
            .gbps
    };
    assert!(g("radix / per-page") > g("rb-tree / per-page"));
    assert!(g("rb-tree / coalesced") > g("rb-tree / per-page"));

    let ipi = ablations::ipi::run(2 << 20, 3).unwrap();
    assert!(ipi[1].core0_wait_us == 0.0 && ipi[0].core0_wait_us > 0.0);

    let ns = ablations::name_server::run(4).unwrap();
    assert!(
        ns[1].make_us < ns[0].make_us,
        "local name server makes are cheaper"
    );
}

#[test]
fn cluster_coupling_wait_grows_with_nodes() {
    let mut small =
        xemem_cluster::ClusterConfig::smoke(1, NodeConfig::LinuxOnly, AttachModel::OneTime);
    small.iterations = 60;
    let mut big = small.clone();
    big.nodes = 6;
    let r1 = xemem_cluster::run_cluster(&small).unwrap();
    let r6 = xemem_cluster::run_cluster(&big).unwrap();
    assert!(r6.coupling_wait > r1.coupling_wait);
}

#[test]
fn stream_runs_over_a_real_attached_region() {
    // End-to-end data-path check of the analytics pattern: copy the
    // shared region out through a real attachment, run STREAM on the
    // private copy, and validate the kernels.
    use xemem::SystemBuilder;
    use xemem_workloads::stream::StreamArrays;

    const MIB: u64 = 1 << 20;
    let mut sys = SystemBuilder::new()
        .linux_management("linux", 4, 64 * MIB)
        .kitten_cokernel("kitten", 1, 32 * MIB)
        .build()
        .unwrap();
    let kitten = sys.enclave_by_name("kitten").unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let sim = sys.spawn_process(kitten, 8 * MIB).unwrap();
    let ana = sys.spawn_process(linux, 8 * MIB).unwrap();

    // The simulation writes a float pattern into the shared region.
    let region = MIB;
    let buf = sys.alloc_buffer(sim, region).unwrap();
    let floats: Vec<f64> = (0..region / 8).map(|i| i as f64 * 0.5).collect();
    let bytes: Vec<u8> = floats.iter().flat_map(|f| f.to_le_bytes()).collect();
    sys.write(sim, buf, &bytes).unwrap();

    // The analytics process attaches and copies it out.
    let segid = sys.xpmem_make(sim, buf, region, None).unwrap();
    let apid = sys.xpmem_get(ana, segid).unwrap();
    let va = sys.xpmem_attach(ana, apid, 0, region).unwrap();
    let mut copied = vec![0u8; region as usize];
    sys.read(ana, va, &mut copied).unwrap();
    let back: Vec<f64> = copied
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    assert_eq!(back, floats, "shared floats must round-trip bit-exactly");

    // And STREAM runs (and validates) over a same-sized private array.
    let mut s = StreamArrays::for_region(region);
    for _ in 0..5 {
        s.run_once();
    }
    s.validate(5).unwrap();
}

#[test]
fn hugepage_ablation_shape() {
    let rows = xemem_bench::ablations::hugepages::run(16 << 20, 2).unwrap();
    assert!(rows[1].gbps > rows[0].gbps * 2.0);
}
