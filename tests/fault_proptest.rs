//! Property test: no random fault schedule can leak or double-free
//! physical frames, and the whole simulation — faults included — is a
//! deterministic function of the seed.
//!
//! Each case derives a [`FaultPlan`] from the seed (enclave crashes,
//! process kills, name-server outages, lossy-link windows), drives a
//! fixed make/get/attach/read/remove/detach workload through it while
//! virtual time marches across the fault horizon, then gracefully exits
//! every process that is still reachable. Afterwards every surviving
//! enclave's allocator must hold exactly its pre-workload frame count:
//! fewer means a leak, more means a double-free.

use proptest::prelude::*;
use xemem::{EnclaveRef, FaultPlan, ProcessRef, SimTime, SystemBuilder, XememError};
use xemem_sim::SimRng;

const MIB: u64 = 1 << 20;
/// Virtual-time span the random fault schedules are spread over; the
/// workload steps its clock across it so faults interleave with ops.
const HORIZON: u64 = 1_000_000; // 1 ms
const ROUNDS: u64 = 4;

/// Everything observable about one run; two runs with equal seeds must
/// produce equal outcomes.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    /// Per-enclave free-frame count at the end (None for dead enclaves,
    /// whose partitions are retired wholesale).
    free_frames: Vec<Option<u64>>,
    outstanding_loans: usize,
    clock_ns: u64,
    n_events: usize,
    ok_ops: u32,
    failed_ops: u32,
}

fn run_schedule(seed: u64) -> Outcome {
    run_schedule_with(seed, false)
}

/// Like [`run_schedule`] but on a 4-enclave topology with the name
/// service sharded 2 × 2 and the fault generator aiming outages at
/// individual shards, plus a stale-lease oracle: once a named segment's
/// removal has completed at virtual time T, no later successful lookup
/// may ever return that segid again (leases are revoked eagerly and
/// epoch-fenced across failovers, so the cache can never outlive the
/// registration).
fn run_schedule_sharded(seed: u64) -> Outcome {
    run_schedule_with(seed, true)
}

fn run_schedule_with(seed: u64, sharded: bool) -> Outcome {
    let mut rng = SimRng::seed_from_u64(seed);
    let (n_slots, n_shards) = if sharded { (4, 2) } else { (3, 1) };
    let plan = FaultPlan::random_sharded(
        &mut rng,
        SimTime::from_nanos(HORIZON),
        n_slots,
        4,
        if sharded { 8 } else { 6 },
        n_shards,
    );
    let mut b = SystemBuilder::new()
        .linux_management("linux", 4, 256 * MIB)
        .kitten_cokernel("kitten0", 1, 128 * MIB)
        .kitten_cokernel("kitten1", 1, 128 * MIB);
    if sharded {
        b = b
            .kitten_cokernel("kitten2", 1, 128 * MIB)
            .name_service_shards(2, 2);
    }
    let mut sys = b.with_fault_plan(plan, seed).build().unwrap();
    let names: &[&str] = if sharded {
        &["linux", "kitten0", "kitten1", "kitten2"]
    } else {
        &["linux", "kitten0", "kitten1"]
    };
    let encs: Vec<EnclaveRef> = names
        .iter()
        .map(|n| sys.enclave_by_name(n).unwrap())
        .collect();
    let baselines: Vec<u64> = encs
        .iter()
        .map(|&e| sys.free_frames_of(e).unwrap())
        .collect();

    let mut ok_ops = 0u32;
    let mut failed_ops = 0u32;
    // Every operation tolerates failure: injected crashes and outages
    // make arbitrary ops fail, and that is the point of the test.
    macro_rules! attempt {
        ($r:expr) => {
            match $r {
                Ok(v) => {
                    ok_ops += 1;
                    Some(v)
                }
                Err(_e) => {
                    failed_ops += 1;
                    None
                }
            }
        };
    }

    let mut procs: Vec<Vec<ProcessRef>> = Vec::new();
    for &e in &encs {
        let mut v = Vec::new();
        for _ in 0..2 {
            if let Some(p) = attempt!(sys.spawn_process(e, 16 * MIB)) {
                v.push(p);
            }
        }
        procs.push(v);
    }

    let mut attached: Vec<(ProcessRef, xemem::VirtAddr)> = Vec::new();
    let mut exported: Vec<(ProcessRef, xemem::Segid, String)> = Vec::new();
    // Stale-lease oracle: names whose removal *completed*, with the
    // segid they used to bind. Names are never re-registered, so any
    // later lookup that succeeds with the old segid is a lease served
    // past its revocation.
    let mut removed: Vec<(String, xemem::Segid)> = Vec::new();
    for round in 0..ROUNDS {
        // Each enclave's first process exports a named segment...
        for (e, ps) in procs.clone().into_iter().enumerate() {
            let Some(&exporter) = ps.first() else {
                continue;
            };
            if let Some(buf) = attempt!(sys.alloc_buffer(exporter, MIB)) {
                attempt!(sys.write(exporter, buf, b"payload"));
                let name = format!("seg:{e}:{round}");
                if let Some(segid) = attempt!(sys.xpmem_make(exporter, buf, MIB, Some(&name))) {
                    exported.push((exporter, segid, name));
                }
            }
        }
        // ...and each enclave's second process attaches to a neighbor's.
        for (e, ps) in procs.clone().into_iter().enumerate() {
            let Some(&consumer) = ps.get(1) else { continue };
            let target = (e + 1) % encs.len();
            let name = format!("seg:{target}:{round}");
            let Some(segid) = attempt!(sys.xpmem_search(consumer, &name)) else {
                continue;
            };
            let Some(apid) = attempt!(sys.xpmem_get(consumer, segid)) else {
                continue;
            };
            if let Some(va) = attempt!(sys.xpmem_attach(consumer, apid, 0, MIB)) {
                let mut b = [0u8; 7];
                attempt!(sys.read(consumer, va, &mut b));
                attached.push((consumer, va));
            }
            // Re-probe a previously removed name from every consumer:
            // whatever the fault schedule did to the shard in between
            // (outage, failover, nothing), the old binding must never
            // come back.
            if let Some((gone_name, gone_segid)) = removed.get(e % removed.len().max(1)) {
                if let Some(found) = attempt!(sys.xpmem_search(consumer, gone_name)) {
                    assert_ne!(
                        found, *gone_segid,
                        "lookup of {gone_name:?} returned a segid revoked before \
                         the lookup's virtual time (seed {seed})"
                    );
                }
            }
        }
        // Churn: periodically detach everything and withdraw exports, so
        // faults land on every lifecycle stage across rounds.
        if round % 2 == 1 {
            for (p, va) in attached.drain(..) {
                attempt!(sys.xpmem_detach(p, va));
            }
        }
        if round == 2 {
            for (p, segid, name) in exported.drain(..) {
                if attempt!(sys.xpmem_remove(p, segid)).is_some() {
                    removed.push((name, segid));
                }
            }
        }
        // March virtual time into the next slice of the fault schedule.
        let target = SimTime::from_nanos((round + 1) * HORIZON / ROUNDS);
        if sys.clock().now() < target {
            sys.clock().advance_to(target);
        }
    }

    // Step past the horizon so the next operations deliver any faults
    // still queued, then gracefully retire every process we spawned.
    sys.clock().advance_to(SimTime::from_nanos(HORIZON + 1));
    for ps in procs.clone() {
        for p in ps {
            attempt!(sys.exit_process(p));
        }
    }

    // The invariant: live enclaves are back at their pre-workload frame
    // counts — nothing leaked, nothing returned twice — and every frame
    // loan opened by a crash has drained.
    let free_frames: Vec<Option<u64>> = encs
        .iter()
        .map(|&e| {
            if sys.enclave_alive(e) {
                sys.free_frames_of(e)
            } else {
                None
            }
        })
        .collect();
    for (i, f) in free_frames.iter().enumerate() {
        if let Some(f) = f {
            assert_eq!(
                *f, baselines[i],
                "enclave {} leaked or double-freed frames under seed {seed}",
                names[i]
            );
        }
    }
    assert_eq!(
        sys.outstanding_loans(),
        0,
        "unsettled frame loans under seed {seed}"
    );

    Outcome {
        free_frames,
        outstanding_loans: sys.outstanding_loans(),
        clock_ns: sys.clock().now().as_nanos(),
        n_events: sys.events().len(),
        ok_ops,
        failed_ops,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn no_fault_schedule_leaks_frames_and_runs_are_deterministic(seed in any::<u64>()) {
        let first = run_schedule(seed);
        // Re-running the identical seed rebuilds the system from scratch
        // and must reproduce the run exactly: same clock, same event
        // count, same op outcomes, same allocator states.
        let second = run_schedule(seed);
        prop_assert_eq!(first, second);
    }

    /// The same property over the sharded name service, with the fault
    /// generator aiming outages at individual shards and crashes free to
    /// hit replica slots (triggering failovers): no schedule leaks
    /// frames, no lookup ever resurrects a revoked lease (the oracle
    /// inside the run asserts it), and runs stay seed-deterministic.
    #[test]
    fn no_sharded_fault_schedule_leaks_frames_or_serves_revoked_leases(seed in any::<u64>()) {
        let first = run_schedule_sharded(seed);
        let second = run_schedule_sharded(seed);
        prop_assert_eq!(first, second);
    }
}

/// The run driver shards schedules across worker threads without
/// changing any outcome: 64 split-seeded schedules at `--jobs 1` and
/// `--jobs 8` are observationally identical, and each unit's seed is a
/// pure function of the root seed and the unit index — never of which
/// worker ran it or in what order.
#[test]
fn driver_sharding_preserves_fault_schedule_outcomes() {
    use xemem_sim::{split_seed, RunDriver, RunPlan};
    const SCHEDULES: usize = 64;
    const ROOT: u64 = 0xFA07_5EED;
    let run_all = |jobs: usize| {
        RunDriver::new(RunPlan::new(SCHEDULES).with_jobs(jobs).with_seed(ROOT)).execute(|ctx| {
            assert_eq!(ctx.seed, split_seed(ROOT, ctx.index as u64));
            run_schedule(ctx.seed)
        })
    };
    let serial = run_all(1);
    let parallel = run_all(8);
    assert_eq!(serial, parallel, "sharded schedules diverged from serial");
}

/// Driver determinism over the sharded name service: shard outages,
/// failovers and lease revocations are all virtual-time machinery, so
/// worker count still cannot leak into any outcome.
#[test]
fn driver_sharding_preserves_sharded_name_service_outcomes() {
    use xemem_sim::{split_seed, RunDriver, RunPlan};
    const SCHEDULES: usize = 32;
    const ROOT: u64 = 0x5AD_5EED;
    let run_all = |jobs: usize| {
        RunDriver::new(RunPlan::new(SCHEDULES).with_jobs(jobs).with_seed(ROOT)).execute(|ctx| {
            assert_eq!(ctx.seed, split_seed(ROOT, ctx.index as u64));
            run_schedule_sharded(ctx.seed)
        })
    };
    let serial = run_all(1);
    let parallel = run_all(8);
    assert_eq!(serial, parallel, "sharded schedules diverged from serial");
}

/// A schedule-free control: with no injector at all the same workload
/// also returns every frame (guards the harness itself against leaks).
#[test]
fn control_run_without_faults_is_leak_free() {
    let mut sys = SystemBuilder::new()
        .linux_management("linux", 4, 256 * MIB)
        .kitten_cokernel("kitten0", 1, 128 * MIB)
        .build()
        .unwrap();
    let linux = sys.enclave_by_name("linux").unwrap();
    let kitten = sys.enclave_by_name("kitten0").unwrap();
    let base_l = sys.free_frames_of(linux).unwrap();
    let base_k = sys.free_frames_of(kitten).unwrap();
    let exporter = sys.spawn_process(kitten, 16 * MIB).unwrap();
    let consumer = sys.spawn_process(linux, 16 * MIB).unwrap();
    let buf = sys.alloc_buffer(exporter, MIB).unwrap();
    let segid = sys.xpmem_make(exporter, buf, MIB, Some("ctl")).unwrap();
    let apid = sys.xpmem_get(consumer, segid).unwrap();
    let va = sys.xpmem_attach(consumer, apid, 0, MIB).unwrap();
    let mut b = [0u8; 1];
    sys.read(consumer, va, &mut b).unwrap();
    sys.exit_process(consumer).unwrap();
    sys.exit_process(exporter).unwrap();
    assert_eq!(sys.free_frames_of(linux).unwrap(), base_l);
    assert_eq!(sys.free_frames_of(kitten).unwrap(), base_k);
    assert_eq!(sys.outstanding_loans(), 0);
    assert!(matches!(
        sys.xpmem_search(consumer, "ctl"),
        Err(XememError::UnknownName(_) | XememError::Kernel(_))
    ));
}

// ---------------------------------------------------------------------
// Pool-leak oracle: random pool-consumer crash schedules
// ---------------------------------------------------------------------

/// Observable outcome of one pool crash schedule; equal seeds must
/// reproduce it exactly, and every schedule must end leak-free.
#[derive(Debug, PartialEq, Eq)]
struct PoolOutcome {
    swept: u64,
    consumers_dead: Vec<bool>,
    ok_ops: u32,
    failed_ops: u32,
    clock_ns: u64,
    n_events: usize,
}

/// A serial producer/consumer pool workload under a random
/// pool-consumer crash schedule. The oracle: after the final sweep and
/// drain, `leak_check()` holds (no slot leaked, none double-freed) —
/// crashed consumers' references were reclaimed exactly once.
fn run_pool_schedule(seed: u64) -> PoolOutcome {
    use xemem_pool::{BufferPool, ConsumerId, Holder, SlotGuard};

    const CONSUMERS: usize = 3;
    const CAPACITY: u32 = 12;
    let mut rng = SimRng::seed_from_u64(seed);
    let mut plan = FaultPlan::new().pool_capacity(CAPACITY as usize);
    for _ in 0..rng.uniform_u64(1, 3) {
        let at = rng.uniform_u64(HORIZON / 2, HORIZON);
        let slot = rng.uniform_u64(1, (CONSUMERS + 1) as u64) as usize;
        let pool_slot = rng.uniform_u64(0, u64::from(CAPACITY)) as usize;
        plan = plan.pool_consumer_crash(SimTime::from_nanos(at), slot, pool_slot);
    }
    plan.validate(CONSUMERS + 1, 1).expect("well-formed plan");

    let mut b = SystemBuilder::new().linux_management("linux", 4, 256 * MIB);
    for i in 0..CONSUMERS {
        b = b.kitten_cokernel(&format!("pk{i}"), 1, 64 * MIB);
    }
    let mut sys = b.with_fault_plan(plan, seed).build().unwrap();
    let mut ok_ops = 0u32;
    let mut failed_ops = 0u32;

    let producer = sys.spawn_process(EnclaveRef(0), 32 * MIB).unwrap();
    let t0 = sys.clock().now();
    let (mut pool, _) =
        BufferPool::create_at(&mut sys, producer, CAPACITY, 4096, Some("pp"), 4, t0).unwrap();
    let mut ids: Vec<ConsumerId> = Vec::new();
    for c in 0..CONSUMERS {
        let p = sys.spawn_process(EnclaveRef(1 + c), 2 * MIB).unwrap();
        let at = sys.clock().now();
        let (id, _) = pool.join_at(&mut sys, p, at).unwrap();
        ids.push(id);
    }

    // March virtual time across the fault horizon in rounds; each round
    // publishes one slot per live consumer and consumers hold/release.
    let t0_ns = sys.clock().now().as_nanos();
    let mut held: Vec<Vec<SlotGuard>> = (0..CONSUMERS).map(|_| Vec::new()).collect();
    let mut swept = 0u64;
    for round in 0..ROUNDS * 2 {
        let now = SimTime::from_nanos(t0_ns + (round + 1) * HORIZON / (ROUNDS * 2));
        sys.clock().advance_to(now);
        sys.deliver_pending_faults();
        let (n, _) = pool.sweep_at(&mut sys, now);
        swept += n;
        let mut t = now;
        for (c, &id) in ids.iter().enumerate() {
            if !pool.consumer_alive(id) {
                held[c].clear();
                continue;
            }
            match pool.acquire_at(t) {
                Ok((g, end)) => {
                    ok_ops += 1;
                    t = end;
                    match pool.publish_at(id, g, t) {
                        Ok(end) => {
                            ok_ops += 1;
                            t = end;
                        }
                        Err((g, _)) => {
                            failed_ops += 1;
                            if let Ok(end) = pool.release_at(Holder::Exporter, g, t) {
                                t = end;
                            }
                        }
                    }
                }
                Err(_) => failed_ops += 1,
            }
            match pool.consume_at(id, t) {
                Ok((Some(g), end)) => {
                    ok_ops += 1;
                    t = end;
                    held[c].push(g);
                }
                Ok((None, end)) => t = end,
                Err(_) => failed_ops += 1,
            }
            if held[c].len() > 1 {
                let g = held[c].remove(0);
                match pool.release_at(Holder::Consumer(id.0), g, t) {
                    Ok(end) => {
                        ok_ops += 1;
                        t = end;
                    }
                    Err(_) => {
                        failed_ops += 1;
                        held[c].clear();
                    }
                }
            }
        }
    }

    // Drain: deliver any stragglers, final sweep, then live consumers
    // pop and release everything still in flight.
    sys.clock()
        .advance_to(SimTime::from_nanos(t0_ns + 2 * HORIZON));
    sys.deliver_pending_faults();
    let mut t = sys.clock().now();
    let (n, end) = pool.sweep_at(&mut sys, t);
    swept += n;
    t = t.max(end);
    for (c, &id) in ids.iter().enumerate() {
        if !pool.consumer_alive(id) {
            held[c].clear();
            continue;
        }
        for g in held[c].drain(..) {
            t = pool.release_at(Holder::Consumer(id.0), g, t).unwrap();
            ok_ops += 1;
        }
        loop {
            match pool.consume_at(id, t) {
                Ok((Some(g), end)) => {
                    t = pool.release_at(Holder::Consumer(id.0), g, end).unwrap();
                    ok_ops += 1;
                }
                Ok((None, end)) => {
                    t = end;
                    break;
                }
                Err(_) => unreachable!("live consumer refused a drain pop"),
            }
        }
    }

    // The pool-leak oracle: every slot back on the free list, zero refs
    // outstanding, live consumers fully drained.
    pool.leak_check().expect("pool leak oracle");

    PoolOutcome {
        swept,
        consumers_dead: ids.iter().map(|&id| !pool.consumer_alive(id)).collect(),
        ok_ops,
        failed_ops,
        clock_ns: sys.clock().now().as_nanos(),
        n_events: sys.events().len(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No pool-consumer crash schedule can leak a slot or reclaim one
    /// twice, and pool runs are a deterministic function of the seed.
    #[test]
    fn no_pool_crash_schedule_leaks_slots_and_runs_are_deterministic(seed in any::<u64>()) {
        let first = run_pool_schedule(seed);
        let second = run_pool_schedule(seed);
        prop_assert_eq!(first, second);
    }
}
