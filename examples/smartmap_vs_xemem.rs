//! SMARTMAP vs XEMEM (paper §2 / §4.3).
//!
//! Kitten's native local sharing is SMARTMAP: every process's address
//! space appears at a fixed offset in each sibling's space via shared
//! top-level page-table entries — O(1) setup, but only *within* one
//! Kitten instance. XEMEM exists because multi-enclave systems cannot
//! share top-level tables across heterogeneous kernels; it trades a
//! per-page attachment cost for generality. This example measures both
//! on the same data.
//!
//! Run with: `cargo run --release --example smartmap_vs_xemem`

use std::sync::Arc;
use xemem::SystemBuilder;
use xemem_kitten::Kitten;
use xemem_mem::{FrameAllocator, MappingKernel, Pfn, PhysicalMemory};
use xemem_sim::CostModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const MIB: u64 = 1 << 20;
    let region = 64 * MIB;

    // --- SMARTMAP: two processes inside ONE Kitten instance. ---
    let phys = PhysicalMemory::new((2 * region + 64 * MIB) / 4096);
    let alloc = FrameAllocator::new(Pfn(0), phys.total_frames());
    let mut kitten = Kitten::new(CostModel::default(), phys.clone() as Arc<_>, alloc);
    let a = kitten.spawn(region + MIB)?.value;
    let b = kitten.spawn(region + MIB)?.value;
    let buf = kitten.alloc_buffer(b, region)?.value;
    kitten.write(b, buf, b"smartmap payload")?;
    let sm = kitten.smartmap_attach(a, b)?;
    let window = sm.value;
    let mut got = [0u8; 16];
    kitten.read(a, xemem_mem::VirtAddr(window.0 + buf.0), &mut got)?;
    assert_eq!(&got, b"smartmap payload");
    println!(
        "SMARTMAP (intra-enclave): {region} bytes visible after {}",
        sm.cost
    );

    // --- XEMEM: the same region shared ACROSS enclaves. ---
    let mut sys = SystemBuilder::new()
        .linux_management("linux", 4, 128 * MIB)
        .kitten_cokernel("kitten", 1, region + 64 * MIB)
        .build()?;
    let kref = sys.enclave_by_name("kitten").unwrap();
    let lref = sys.enclave_by_name("linux").unwrap();
    let exporter = sys.spawn_process(kref, region + 16 * MIB)?;
    let attacher = sys.spawn_process(lref, 16 * MIB)?;
    let xbuf = sys.alloc_buffer(exporter, region)?;
    sys.write(exporter, xbuf, b"xemem payload")?;
    let segid = sys.xpmem_make(exporter, xbuf, region, None)?;
    let apid = sys.xpmem_get(attacher, segid)?;
    let outcome = sys.xpmem_attach_outcome(attacher, apid, 0, region)?;
    let total = outcome.route_request + outcome.serve + outcome.route_reply + outcome.map;
    let mut got = [0u8; 13];
    sys.read(attacher, outcome.va, &mut got)?;
    assert_eq!(&got, b"xemem payload");
    println!("XEMEM   (cross-enclave):  {region} bytes visible after {total}");

    println!(
        "\nSMARTMAP is O(1) but confined to one lightweight kernel;\n\
         XEMEM pays ~{} per 4 KiB page to cross any enclave boundary —\n\
         the trade the paper makes for multi-OS/R generality (§3.3).",
        xemem_sim::SimDuration::from_nanos(total.as_nanos() / (region / 4096))
    );
    Ok(())
}
