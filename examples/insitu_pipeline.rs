//! A composed in situ pipeline (paper §6): HPCCG + STREAM across
//! enclaves, in all four execution/attachment workflow combinations.
//!
//! Uses a scaled-down workload so the example finishes in seconds while
//! exercising the full protocol: export, cross-enclave attach, shared
//! stop/go signalling, recurring re-registration and detach.
//!
//! Run with: `cargo run --release --example insitu_pipeline`

use xemem_workloads::hpccg::HpccgProblem;
use xemem_workloads::insitu::{
    run_insitu, AnalyticsEnclave, AttachModel, ExecutionModel, InsituConfig, SimEnclave,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // First, prove the simulation component is a real solver: run the
    // numeric conjugate gradient on a small grid.
    let problem = HpccgProblem {
        nx: 16,
        ny: 16,
        nz: 16,
    };
    let solved = problem.solve(300, 1e-8);
    println!(
        "HPCCG numeric check: {} iterations, residual {:.2e} (exact solution = ones)",
        solved.iterations, solved.residual
    );
    assert!(solved.residual < 1e-8);

    // Then run the composed pipeline in every workflow combination, on a
    // Kitten-simulation + native-Linux-analytics node.
    println!("\nComposed in situ pipeline (Kitten simulation / Linux analytics):");
    println!(
        "{:>13} {:>10} {:>12} {:>14} {:>10}",
        "execution", "attach", "completion", "attach ovhd", "verified"
    );
    for execution in [ExecutionModel::Synchronous, ExecutionModel::Asynchronous] {
        for attach in [AttachModel::OneTime, AttachModel::Recurring] {
            let mut cfg = InsituConfig::smoke(
                SimEnclave::KittenCokernel,
                AnalyticsEnclave::LinuxNative,
                execution,
                attach,
            );
            cfg.iterations = 60;
            cfg.comm_every = 10;
            cfg.region_bytes = 16 << 20;
            let result = run_insitu(&cfg)?;
            println!(
                "{:>13} {:>10} {:>12} {:>14} {:>10}",
                format!("{execution:?}"),
                format!("{attach:?}"),
                format!("{}", result.sim_completion),
                format!("{}", result.attach_overhead),
                result.verified
            );
        }
    }
    println!("\n(The simulation's shared-memory headers were verified by the");
    println!(" analytics process at every communication point.)");
    Ok(())
}
