//! Quickstart: share memory between two strictly isolated enclaves.
//!
//! Builds the simplest multi-OS/R node — a Linux management enclave
//! (hosting the XEMEM name server) plus a Kitten lightweight-kernel
//! co-kernel enclave — and walks the full XPMEM-compatible lifecycle:
//! export, discover, attach, communicate, detach.
//!
//! Run with: `cargo run --example quickstart`

use xemem::{SystemBuilder, VirtAddr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One node, two enclaves. The builder carves hardware partitions,
    // boots both kernels, wires the Pisces IPI channel and runs the
    // enclave-registration protocol.
    let mut sys = SystemBuilder::new()
        .linux_management("linux0", 4, 512 << 20)
        .kitten_cokernel("kitten0", 1, 256 << 20)
        .build()?;

    let kitten = sys.enclave_by_name("kitten0").unwrap();
    let linux = sys.enclave_by_name("linux0").unwrap();
    println!(
        "booted {} enclaves; virtual time {}",
        sys.enclave_count(),
        sys.clock().now()
    );

    // An HPC simulation process in the lightweight kernel, and an
    // analytics process in Linux.
    let sim = sys.spawn_process(kitten, 64 << 20)?;
    let analytics = sys.spawn_process(linux, 64 << 20)?;

    // The simulation produces a timestep and exports it with a
    // well-known name.
    let region = 8 << 20;
    let buf = sys.alloc_buffer(sim, region)?;
    sys.write(sim, buf, b"timestep 0: temperature field ...")?;
    let segid = sys.xpmem_make(sim, buf, region, Some("timestep-0"))?;
    println!("exported {region} bytes as {segid}");

    // The analytics process discovers the segment by name, requests
    // access, and maps it — all across enclave boundaries, through the
    // name server and the kernel-to-kernel channel.
    let found = sys.xpmem_search(analytics, "timestep-0")?;
    assert_eq!(found, segid);
    let apid = sys.xpmem_get(analytics, found)?;
    let outcome = sys.xpmem_attach_outcome(analytics, apid, 0, region)?;
    println!(
        "attached at {} (route {} + serve {} + reply {} + map {})",
        outcome.va, outcome.route_request, outcome.serve, outcome.route_reply, outcome.map
    );

    // Same physical frames: the analytics process reads the simulation's
    // bytes, and its writes flow back.
    let mut seen = vec![0u8; 33];
    sys.read(analytics, outcome.va, &mut seen)?;
    assert_eq!(&seen, b"timestep 0: temperature field ...");
    sys.write(analytics, VirtAddr(outcome.va.0 + region - 8), b"ANALYZED")?;
    let mut reply = vec![0u8; 8];
    sys.read(sim, VirtAddr(buf.0 + region - 8), &mut reply)?;
    assert_eq!(&reply, b"ANALYZED");
    println!("cross-enclave round trip verified");

    // Tear down.
    sys.xpmem_detach(analytics, outcome.va)?;
    sys.xpmem_release(analytics, apid)?;
    sys.xpmem_remove(sim, segid)?;
    println!("lifecycle complete at virtual time {}", sys.clock().now());
    Ok(())
}
