//! The paper's Fig. 1/2 topology: a Linux management enclave, two Kitten
//! co-kernels, and Palacios VMs on both kinds of host — with memory
//! shared between the two *VMs*, the deepest routing path in the tree.
//!
//! Prints the registration and attachment message flows so the
//! hierarchical routing protocol (paper §3.2) is visible.
//!
//! Run with: `cargo run --example enclave_topology`

use xemem::{GuestOs, MemoryMapKind, SystemBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const MIB: u64 = 1 << 20;
    let mut sys = SystemBuilder::new()
        .with_trace()
        .linux_management("linuxB", 4, 512 * MIB) // hosts the name server
        .kitten_cokernel("lwkA", 1, 128 * MIB)
        .kitten_cokernel("lwkD", 1, 192 * MIB)
        .palacios_vm(
            "vmC",
            "linuxB",
            96 * MIB,
            MemoryMapKind::RbTree,
            GuestOs::Fwk,
        )
        .palacios_vm("vmF", "lwkD", 96 * MIB, MemoryMapKind::RbTree, GuestOs::Fwk)
        .build()?;

    println!("Topology (paper Fig. 2):");
    println!("  linuxB (name server)");
    println!("  ├── lwkA           [Pisces IPI channel]");
    println!("  ├── lwkD           [Pisces IPI channel]");
    println!("  │   └── vmF        [Palacios virtual PCI]");
    println!("  └── vmC            [Palacios virtual PCI]");
    for i in 0..sys.enclave_count() {
        let e = xemem::EnclaveRef(i);
        println!("  slot {i}: id {:?}", sys.enclave_id(e).unwrap());
    }

    println!("\nRegistration traffic (discovery broadcasts + enclave-ID allocation):");
    for m in sys.trace() {
        println!(
            "  [{}] slot{} -> slot{}: {:?}",
            m.at, m.from_slot, m.to_slot, m.kind
        );
    }
    sys.clear_trace();

    // VM-to-VM sharing: vmC exports, vmF attaches. The request must
    // climb vmF -> lwkD -> linuxB (name server) and descend to vmC.
    let vmc = sys.enclave_by_name("vmC").unwrap();
    let vmf = sys.enclave_by_name("vmF").unwrap();
    let exporter = sys.spawn_process(vmc, 16 * MIB)?;
    let attacher = sys.spawn_process(vmf, 16 * MIB)?;
    let buf = sys.alloc_buffer(exporter, MIB)?;
    sys.write(exporter, buf, b"hello from vmC")?;
    let segid = sys.xpmem_make(exporter, buf, MIB, None)?;
    let apid = sys.xpmem_get(attacher, segid)?;
    let va = sys.xpmem_attach(attacher, apid, 0, MIB)?;
    let mut got = [0u8; 14];
    sys.read(attacher, va, &mut got)?;
    assert_eq!(&got, b"hello from vmC");

    println!("\nVM-to-VM attachment traffic for {segid}:");
    for m in sys.trace() {
        println!(
            "  [{}] slot{} -> slot{}: {:?}",
            m.at, m.from_slot, m.to_slot, m.kind
        );
    }
    println!(
        "\nvmF read {:?} through two VMMs and two co-kernel hops",
        std::str::from_utf8(&got).unwrap()
    );
    Ok(())
}
