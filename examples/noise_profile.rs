//! OS-noise profiles and the Selfish Detour benchmark (paper §5.5).
//!
//! Compares the detour profile of a Kitten enclave against a Linux-like
//! full-weight kernel, then shows how serving XEMEM attachments of
//! increasing size perturbs the Kitten profile — the mechanism behind
//! paper Fig. 7.
//!
//! Run with: `cargo run --release --example noise_profile`

use xemem::SystemBuilder;
use xemem_sim::noise::{CompositeNoise, NoiseEvent, NoiseKind, ScheduledNoise};
use xemem_sim::{SimDuration, SimRng, SimTime};
use xemem_workloads::detour::SelfishDetour;

fn summarize(label: &str, detours: &[xemem_workloads::detour::DetourSample]) {
    let total: f64 = detours.iter().map(|d| d.duration.as_secs_f64()).sum();
    let max = detours
        .iter()
        .map(|d| d.duration)
        .max()
        .unwrap_or(SimDuration::ZERO);
    println!(
        "  {label:<18} {:>6} detours, {:>9.4}% CPU stolen, longest {}",
        detours.len(),
        total / 10.0 * 100.0,
        max
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let window = SimDuration::from_secs(10);
    let bench = SelfishDetour::default();

    println!("Baseline noise profiles over a 10 s window:");
    let mut rng = SimRng::seed_from_u64(42);
    let mut kitten = CompositeNoise::kitten(&mut rng);
    summarize("Kitten LWK", &bench.run(&mut kitten, SimTime::ZERO, window));
    let mut fwk = CompositeNoise::fwk(&mut rng);
    summarize(
        "Linux-like FWK",
        &bench.run(&mut fwk, SimTime::ZERO, window),
    );

    println!("\nKitten while serving one XEMEM attachment per second (paper Fig. 7):");
    for region in [4u64 << 10, 2 << 20, 256 << 20] {
        // Build a real system and measure the actual page-table-walk
        // service time for this region size.
        let mut sys = SystemBuilder::new()
            .linux_management("linux", 4, 64 << 20)
            .kitten_cokernel("kitten", 1, region + (64 << 20))
            .build()?;
        let kitten_ref = sys.enclave_by_name("kitten").unwrap();
        let linux_ref = sys.enclave_by_name("linux").unwrap();
        let exporter = sys.spawn_process(kitten_ref, region + (16 << 20))?;
        let attacher = sys.spawn_process(linux_ref, 8 << 20)?;
        let buf = sys.alloc_buffer(exporter, region)?;
        sys.prepare_buffer(exporter, buf, region)?;
        let segid = sys.xpmem_make(exporter, buf, region, None)?;
        let apid = sys.xpmem_get(attacher, segid)?;

        let mut injected = Vec::new();
        for sec in 0..10u64 {
            let at = SimTime::from_nanos(sec * 1_000_000_000 + 250_000_000);
            let outcome = sys.attach_at(attacher, apid, 0, region, at)?;
            injected.push(NoiseEvent {
                start: at + outcome.route_request,
                duration: outcome.serve,
                kind: NoiseKind::AttachService,
            });
            sys.detach_at(attacher, outcome.va, outcome.end)?;
        }
        let mut noise = CompositeNoise::new(vec![
            Box::new(CompositeNoise::kitten(&mut rng)),
            Box::new(ScheduledNoise::new(injected)),
        ]);
        let detours = bench.run(&mut noise, SimTime::ZERO, window);
        let label = if region >= 1 << 20 {
            format!("+ {} MB attaches", region >> 20)
        } else {
            format!("+ {} KB attaches", region >> 10)
        };
        summarize(&label, &detours);
    }
    println!("\n(4 KB attachments disappear into the hardware-noise floor;");
    println!(" large ones dominate everything else, as in the paper.)");
    Ok(())
}
