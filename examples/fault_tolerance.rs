//! Fault tolerance: scheduled failures and crash-consistent teardown.
//!
//! Builds the two-enclave node from the quickstart, but hands the
//! system a [`FaultPlan`]: a deterministic, virtual-time-stamped
//! schedule of failures — here a name-server outage, a lossy window on
//! the forwarding channels, and an abrupt crash of the exporting
//! process. The example shows each layer reacting:
//!
//! * lookups ride out the outage with exponential backoff (or are
//!   served from a live, time-bounded lease granted by an earlier
//!   lookup),
//! * dropped command hops cost bounded retransmissions in virtual time,
//! * the crash triggers the revocation protocol: the attacher's reaper
//!   unmaps the dead mapping, so reads fail with `SourceGone` instead
//!   of returning stale bytes, and the quarantined frames return to the
//!   owner enclave's allocator once the last reference drops.
//!
//! Run with: `cargo run --example fault_tolerance`
//!
//! Pass `--trace-out <path>` (or set `XEMEM_TRACE=1`) to record the
//! run with the tracing layer: the failure handling below — backoff
//! leaves, retransmissions, the revocation/reap spans — lands in a
//! chrome://tracing JSON you can open in a browser, and the
//! conservation auditor verifies every charged nanosecond was
//! attributed.

use xemem::trace_layer;
use xemem::{FaultPlan, SimDuration, SimTime, SystemBuilder, TraceHandle, XememError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut trace_out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace-out" => trace_out = Some(it.next().expect("--trace-out requires a path")),
            other => panic!("unknown argument: {other} (expected --trace-out PATH)"),
        }
    }
    let tracer = if trace_out.is_some() || trace_layer::env_requested() {
        TraceHandle::enabled()
    } else {
        TraceHandle::disabled()
    };

    // The failure schedule, in virtual time:
    //   2 ms  name server goes dark for 150 µs
    //   during [0, 5 ms)  each forwarded hop is dropped with p = 0.1
    //   5 ms  the simulation process (kitten pid 1) is killed
    let plan = FaultPlan::new()
        .name_server_outage(
            SimTime::from_nanos(2_000_000),
            SimDuration::from_micros(150),
        )
        .drop_messages(SimTime::from_nanos(0), SimDuration::from_millis(5), 0.1)
        .kill_process(SimTime::from_nanos(5_000_000), 1, 1);

    let mut sys = SystemBuilder::new()
        .with_tracer(tracer.clone())
        .linux_management("linux0", 4, 512 << 20)
        .kitten_cokernel("kitten0", 1, 256 << 20)
        .with_fault_plan(plan, 42) // same plan + seed => same history
        .build()?;

    let kitten = sys.enclave_by_name("kitten0").unwrap();
    let linux = sys.enclave_by_name("linux0").unwrap();
    let frames_before = sys.free_frames_of(kitten).unwrap();
    let sim = sys.spawn_process(kitten, 64 << 20)?;
    let analytics = sys.spawn_process(linux, 64 << 20)?;

    // Export a timestep and attach to it across the enclave boundary.
    // Any dropped hops below are retransmitted on a virtual timeout.
    let buf = sys.alloc_buffer(sim, 1 << 20)?;
    sys.write(sim, buf, b"timestep 0 field data")?;
    let segid = sys.xpmem_make(sim, buf, 1 << 20, Some("timestep-0"))?;
    let found = sys.xpmem_search(analytics, "timestep-0")?;
    let apid = sys.xpmem_get(analytics, found)?;
    let va = sys.xpmem_attach(analytics, apid, 0, 1 << 20)?;
    let mut out = vec![0u8; 21];
    sys.read(analytics, va, &mut out)?;
    println!("attached and read: {:?}", String::from_utf8_lossy(&out));

    // Walk into the scheduled name-server outage: a fresh lookup backs
    // off in virtual time until the name server answers again.
    sys.clock().advance_to(SimTime::from_nanos(2_010_000));
    let again = sys.xpmem_search(analytics, "timestep-0")?;
    assert_eq!(again, segid);
    println!("lookup survived the outage at t = {}", sys.clock().now());

    // Walk past the scheduled kill. The next operation delivers the
    // fault: the exporter dies, the owner kernel revokes the segment,
    // and the analytics-side reaper unmaps the attachment.
    sys.clock().advance_to(SimTime::from_nanos(5_000_001));
    match sys.read(analytics, va, &mut out) {
        Err(XememError::SourceGone) => {
            println!("exporter crashed; read correctly failed: source gone")
        }
        other => panic!("expected SourceGone, got {other:?}"),
    }

    // The quarantined frames went back to the kitten allocator the
    // moment the last remote reference dropped, and the kernel freed
    // the rest of the dead process — the partition is back to its
    // pre-spawn state: no leak, no double free.
    assert_eq!(sys.outstanding_loans(), 0);
    assert_eq!(sys.free_frames_of(kitten).unwrap(), frames_before);
    sys.xpmem_detach(analytics, va)?; // bookkeeping-only on a reaped mapping

    // The whole failure history is in the event trace.
    println!("\nfailure/teardown event trace:");
    for ev in sys.events().events() {
        println!("  {:>12}  {}", ev.at.to_string(), ev.label);
    }
    let _ = sim;

    if tracer.is_enabled() {
        // Leaf spans must tile their op roots exactly (the clock-tiling
        // variant doesn't apply here: the manual `advance_to` walks
        // above spend idle time no operation pays for).
        let sums = tracer.audit().expect("conservation audit");
        println!(
            "\ntracing: {} attributed ns, {} name-server retries, {} reaps",
            sums.total_attributed_ns(),
            tracer.counter(trace_layer::Counter::NsRetries),
            tracer.counter(trace_layer::Counter::Reaps),
        );
        print!("{}", tracer.metrics_summary());
        if let Some(path) = trace_out {
            std::fs::write(&path, tracer.chrome_trace_json())?;
            std::fs::write(format!("{path}.folded"), tracer.folded_stacks())?;
            println!("tracing: wrote {path} and {path}.folded");
        }
    }
    Ok(())
}
